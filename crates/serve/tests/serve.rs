//! End-to-end tests: a real server on a loopback socket, a real
//! client, and byte-level comparison against the offline generation
//! path.

use spectragan_core::{SpectraGan, SpectraGanConfig};
use spectragan_geo::io::{encode_traffic, save_context};
use spectragan_serve::client::{assemble_bands, request};
use spectragan_serve::{ServeConfig, Server, ServerHandle};
use spectragan_synthdata::{generate_city, CityConfig, DatasetConfig};
use std::path::PathBuf;

const SEED: u64 = 3;

/// Builds a models directory holding a shared tiny model plus two
/// cities of different sizes, and returns it with the offline model
/// and contexts for reference generation.
fn fixture() -> (
    PathBuf,
    SpectraGan,
    Vec<(String, spectragan_geo::ContextMap)>,
) {
    let dir = std::env::temp_dir().join(format!(
        "sg_serve_e2e_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let model = SpectraGan::new(SpectraGanConfig::tiny(), SEED);
    std::fs::write(dir.join("model.json"), model.to_model_json()).unwrap();
    let ds = DatasetConfig {
        weeks: 1,
        steps_per_hour: 1,
        size_scale: 0.36,
    };
    let mut cities = Vec::new();
    for (name, height, width, seed) in [("city_a", 33, 33, 1u64), ("city_b", 41, 37, 2)] {
        let city = generate_city(
            &CityConfig {
                name: name.to_string(),
                height,
                width,
                seed,
            },
            &ds,
        );
        save_context(&city.context, dir.join(format!("{name}.sgcm"))).unwrap();
        cities.push((name.to_string(), city.context));
    }
    (dir, model, cities)
}

struct RunningServer {
    addr: String,
    handle: ServerHandle,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl RunningServer {
    fn start(cfg: ServeConfig) -> (Self, std::sync::Arc<spectragan_serve::admission::Admission>) {
        let server = Server::bind(cfg).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = server.handle();
        let admission = server.admission();
        let thread = std::thread::spawn(move || server.run().unwrap());
        (
            RunningServer {
                addr,
                handle,
                thread: Some(thread),
            },
            admission,
        )
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn gen_body(city: &str, t_out: usize, seed: u64, gen_batch: usize, format: &str) -> Vec<u8> {
    format!(
        "{{\"city\":\"{city}\",\"t_out\":{t_out},\"seed\":{seed},\"gen_batch\":{gen_batch},\"format\":\"{format}\"}}"
    )
    .into_bytes()
}

#[test]
fn health_metrics_cities_and_routing() {
    let (dir, _, _) = fixture();
    let (server, _) = RunningServer::start(ServeConfig::new("127.0.0.1:0", &dir));

    let health = request(&server.addr, "GET", "/healthz", b"").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.body, b"ok\n");

    let cities = request(&server.addr, "GET", "/cities", b"").unwrap();
    assert_eq!(cities.status, 200);
    let listed: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&cities.body).unwrap()).expect("cities is JSON");
    let listed = match &listed {
        serde_json::Value::Arr(items) => items,
        other => panic!("cities is not a JSON list: {other:?}"),
    };
    let names: Vec<&str> = listed
        .iter()
        .map(|c| match c.get("name") {
            Some(serde_json::Value::Str(s)) => s.as_str(),
            other => panic!("city entry without a name: {other:?}"),
        })
        .collect();
    assert_eq!(names, ["city_a", "city_b"]);
    // Nothing served yet: no city is loaded, nothing resident.
    for c in listed {
        assert!(matches!(
            c.get("loaded"),
            Some(serde_json::Value::Bool(false))
        ));
        assert!(matches!(
            c.get("resident_weight_bytes"),
            Some(serde_json::Value::Num(n)) if *n == 0.0
        ));
    }

    let metrics = request(&server.addr, "GET", "/metrics", b"").unwrap();
    assert_eq!(metrics.status, 200);
    let text = String::from_utf8(metrics.body).unwrap();
    assert!(
        text.contains("spectragan_serve_requests_total"),
        "metrics must expose serve counters:\n{text}"
    );

    assert_eq!(
        request(&server.addr, "GET", "/nope", b"").unwrap().status,
        404
    );
    let wrong = request(&server.addr, "GET", "/generate", b"").unwrap();
    assert_eq!(wrong.status, 405);
    assert_eq!(wrong.header("allow"), Some("POST"));
    assert_eq!(
        request(&server.addr, "POST", "/healthz", b"")
            .unwrap()
            .status,
        405
    );
}

/// The determinism contract of the whole subsystem: served bytes —
/// both framings — equal the offline generation path exactly.
#[test]
fn served_bytes_equal_offline_generation() {
    let (dir, model, cities) = fixture();
    let (server, _) = RunningServer::start(ServeConfig::new("127.0.0.1:0", &dir));

    for (name, context) in &cities {
        let t_out = 30;
        let (offline, _) = model.generate_batched_report(context, t_out, 7, true, 5);

        let sgtm = request(
            &server.addr,
            "POST",
            "/generate",
            &gen_body(name, t_out, 7, 5, "sgtm"),
        )
        .unwrap();
        assert_eq!(sgtm.status, 200, "{name}");
        assert_eq!(
            sgtm.body,
            encode_traffic(&offline),
            "{name}: served SGTM differs from offline bytes"
        );
        assert_eq!(
            sgtm.header("x-spectragan-dims"),
            Some(format!("{t_out} {} {}", context.height(), context.width()).as_str())
        );

        let bands = request(
            &server.addr,
            "POST",
            "/generate",
            &gen_body(name, t_out, 7, 5, "bands"),
        )
        .unwrap();
        assert_eq!(bands.status, 200, "{name}");
        assert!(
            bands.chunks.len() >= 2,
            "{name}: expected a multi-band stream, got {} chunk(s)",
            bands.chunks.len()
        );
        let assembled = assemble_bands(&bands).unwrap();
        assert_eq!(
            assembled.data(),
            offline.data(),
            "{name}: assembled band stream differs from offline map"
        );
    }
}

/// Serving out of a mapped `SGWT` container is invisible on the wire:
/// the same request against a JSON-weights server and an SGWT-weights
/// server returns byte-identical traffic, `/cities` reports the
/// container as mapped with a nonzero resident footprint once loaded,
/// and a corrupt container is refused at load (404/5xx, not a crash).
#[test]
fn sgwt_container_serves_identical_bytes_and_reports_residency() {
    let (dir, model, cities) = fixture();
    let t_out = 30;
    let (name, _context) = &cities[0];
    let body = gen_body(name, t_out, 7, 5, "sgtm");

    // Reference: served bytes with the fixture's model.json.
    let (json_server, _) = RunningServer::start(ServeConfig::new("127.0.0.1:0", &dir));
    let from_json = request(&json_server.addr, "POST", "/generate", &body).unwrap();
    assert_eq!(from_json.status, 200);
    drop(json_server);

    // Same fixture, but the model is now an f32 SGWT container —
    // preferred over the still-present model.json.
    spectragan_core::weights::save_weights(
        &model,
        dir.join("model.sgwt"),
        spectragan_core::weights::Precision::F32,
    )
    .unwrap();
    let (sgwt_server, _) = RunningServer::start(ServeConfig::new("127.0.0.1:0", &dir));
    let from_sgwt = request(&sgwt_server.addr, "POST", "/generate", &body).unwrap();
    assert_eq!(from_sgwt.status, 200);
    assert_eq!(
        from_sgwt.body, from_json.body,
        "SGWT-served bytes differ from JSON-served bytes"
    );

    // /cities now shows the served city as loaded+mapped+resident.
    let status = request(&sgwt_server.addr, "GET", "/cities", b"").unwrap();
    let parsed: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&status.body).unwrap()).unwrap();
    let serde_json::Value::Arr(items) = &parsed else {
        panic!("cities is not a list")
    };
    let entry = items
        .iter()
        .find(|c| matches!(c.get("name"), Some(serde_json::Value::Str(s)) if s == name))
        .expect("served city listed");
    assert!(matches!(
        entry.get("loaded"),
        Some(serde_json::Value::Bool(true))
    ));
    assert!(matches!(
        entry.get("mapped"),
        Some(serde_json::Value::Bool(true))
    ));
    assert!(matches!(
        entry.get("resident_weight_bytes"),
        Some(serde_json::Value::Num(n)) if *n > 0.0
    ));
    drop(sgwt_server);

    // Corrupt one payload byte: the load is refused with a typed
    // error (5xx surface), the process survives.
    let path = dir.join("model.sgwt");
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    let (bad_server, _) = RunningServer::start(ServeConfig::new("127.0.0.1:0", &dir));
    let refused = request(&bad_server.addr, "POST", "/generate", &body).unwrap();
    assert_ne!(refused.status, 200, "corrupt container must not serve");
    let health = request(&bad_server.addr, "GET", "/healthz", b"").unwrap();
    assert_eq!(health.status, 200, "server must survive the bad load");
}

/// Reads a city's `resident_weight_bytes` out of `/cities`.
fn resident_bytes(addr: &str, city: &str) -> f64 {
    let status = request(addr, "GET", "/cities", b"").unwrap();
    let parsed: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&status.body).unwrap()).unwrap();
    let serde_json::Value::Arr(items) = &parsed else {
        panic!("cities is not a list")
    };
    let entry = items
        .iter()
        .find(|c| matches!(c.get("name"), Some(serde_json::Value::Str(s)) if s == city))
        .expect("served city listed");
    match entry.get("resident_weight_bytes") {
        Some(serde_json::Value::Num(n)) => *n,
        other => panic!("resident_weight_bytes missing: {other:?}"),
    }
}

/// Serving out of an int8 container: the wire bytes equal offline
/// generation from the same container, `/cities` accounts the shrunken
/// residency (quantized payloads + f32 scales + f32 biases), and a
/// forged non-finite dequantization scale — with the directory CRC
/// recomputed so only the semantic check can catch it — is refused at
/// registration while `/healthz` stays up.
#[test]
fn int8_container_serves_with_reduced_residency_and_refuses_corrupt_scales() {
    use spectragan_core::weights::{self, Precision, DTYPE_I8, WEIGHT_HEADER};

    let (dir, model, cities) = fixture();
    let t_out = 24;
    let (name, context) = &cities[0];
    let body = gen_body(name, t_out, 7, 5, "sgtm");
    let path = dir.join("model.sgwt");

    // Baseline: the model's full f32 footprint (the same convention
    // the f16 residency tests use — a mapped reduced-precision section
    // counts whole, so it is compared against whole f32 layers, not
    // against an f32 server's lazy subset).
    let f32_resident = model.store().resident_weight_bytes() as f64;

    // The fixture as an int8 container.
    weights::save_weights(&model, &path, Precision::Int8).unwrap();
    let (server, _) = RunningServer::start(ServeConfig::new("127.0.0.1:0", &dir));
    let served = request(&server.addr, "POST", "/generate", &body).unwrap();
    assert_eq!(served.status, 200);

    let loaded = weights::load_model_auto(&path).unwrap();
    let offline = loaded.generate(context, t_out, 7);
    assert_eq!(
        served.body,
        encode_traffic(&offline),
        "int8-served SGTM differs from offline int8 bytes"
    );

    // `/cities` accounts exactly what the offline store holds after a
    // full generation, and it is well under the f32 footprint.
    let int8_resident = resident_bytes(&server.addr, name);
    assert_eq!(
        int8_resident as usize,
        loaded.store().resident_weight_bytes(),
        "served residency diverges from the store's accounting"
    );
    assert!(
        f32_resident >= 3.0 * int8_resident,
        "int8 residency {int8_resident} not well under f32's {f32_resident}"
    );
    drop(server);

    // Forge the first dequantization scale to NaN and reseal the
    // directory CRC: registration must refuse the container on the
    // finite-scale check, and the process must survive.
    let mut bytes = std::fs::read(&path).unwrap();
    let dir_len = u64::from_le_bytes(bytes[6..14].try_into().unwrap()) as usize;
    let scale_at = {
        let d = &bytes[WEIGHT_HEADER..WEIGHT_HEADER + dir_len];
        let rd = |p: usize| u32::from_le_bytes(d[p..p + 4].try_into().unwrap()) as usize;
        let mut pos = 4 + rd(0); // config
        let n_layers = rd(pos);
        pos += 4;
        let mut found = None;
        for _ in 0..n_layers {
            pos += 4 + rd(pos); // name
            let dtype = d[pos];
            let ndim = d[pos + 1] as usize;
            pos += 2 + 4 * ndim + 8 + 8 + 4;
            let count = rd(pos);
            if dtype == DTYPE_I8 && count > 0 {
                found = Some(WEIGHT_HEADER + pos + 4);
                break;
            }
            pos += 4 + 4 * count;
        }
        found.expect("int8 container has a scaled entry")
    };
    bytes[scale_at..scale_at + 4].copy_from_slice(&f32::NAN.to_le_bytes());
    let crc = spectragan_geo::io::crc32(&bytes[WEIGHT_HEADER..WEIGHT_HEADER + dir_len]);
    bytes[14..18].copy_from_slice(&crc.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();

    let (bad_server, _) = RunningServer::start(ServeConfig::new("127.0.0.1:0", &dir));
    let refused = request(&bad_server.addr, "POST", "/generate", &body).unwrap();
    assert_ne!(refused.status, 200, "NaN-scale container must not serve");
    let health = request(&bad_server.addr, "GET", "/healthz", b"").unwrap();
    assert_eq!(health.status, 200, "server must survive the bad load");
}

#[test]
fn invalid_requests_get_typed_4xx_and_server_survives() {
    let (dir, _, _) = fixture();
    let (server, _) = RunningServer::start(ServeConfig::new("127.0.0.1:0", &dir));

    let cases: Vec<(Vec<u8>, u16, &str)> = vec![
        (b"not json at all".to_vec(), 400, "bad JSON"),
        (b"{}".to_vec(), 400, "missing field"),
        (
            gen_body("no_such_city", 24, 0, 8, "bands"),
            404,
            "unknown city",
        ),
        (
            gen_body("../etc", 24, 0, 8, "bands"),
            404,
            "invalid city name",
        ),
        (gen_body("city_a", 0, 0, 8, "bands"), 400, "t_out"),
        (gen_body("city_a", 24, 0, 0, "bands"), 400, "gen_batch"),
        (gen_body("city_a", 24, 0, 8, "yaml"), 400, "unknown format"),
        (
            gen_body("city_a", 10_000_000, 0, 8, "bands"),
            400,
            "server limit",
        ),
    ];
    for (body, want_status, needle) in cases {
        let resp = request(&server.addr, "POST", "/generate", &body).unwrap();
        assert_eq!(resp.status, want_status, "{needle}");
        let text = String::from_utf8_lossy(&resp.body).to_string();
        assert!(
            text.contains(needle),
            "expected {needle:?} in error body {text:?}"
        );
    }

    // After all that abuse the server still serves a valid request.
    let ok = request(
        &server.addr,
        "POST",
        "/generate",
        &gen_body("city_a", 24, 0, 8, "bands"),
    )
    .unwrap();
    assert_eq!(ok.status, 200);
}

/// Admission control: with the budget pinned full, a request is shed
/// with 503 + Retry-After; once the budget frees, the same request
/// succeeds.
#[test]
fn admission_exhaustion_returns_503_with_retry_after() {
    let (dir, _, _) = fixture();
    let mut cfg = ServeConfig::new("127.0.0.1:0", &dir);
    cfg.arena_budget_bytes = 1 << 20;
    let (server, admission) = RunningServer::start(cfg);

    let permit = admission.try_admit(1 << 20).expect("idle budget");
    let shed = request(
        &server.addr,
        "POST",
        "/generate",
        &gen_body("city_a", 24, 0, 8, "bands"),
    )
    .unwrap();
    assert_eq!(shed.status, 503);
    assert_eq!(shed.header("retry-after"), Some("1"));
    drop(permit);

    let ok = request(
        &server.addr,
        "POST",
        "/generate",
        &gen_body("city_a", 24, 0, 8, "bands"),
    )
    .unwrap();
    assert_eq!(ok.status, 200);
}

/// Concurrent mixed-city, mixed-duration storm: every streamed answer
/// must be bit-identical to its offline reference, whatever the
/// interleaving.
#[test]
fn concurrent_storm_is_bitwise_deterministic() {
    let (dir, model, cities) = fixture();
    let mut cfg = ServeConfig::new("127.0.0.1:0", &dir);
    cfg.workers = 4;
    let (server, _) = RunningServer::start(cfg);

    let jobs: Vec<(String, usize, u64)> = vec![
        ("city_a".into(), 24, 1),
        ("city_b".into(), 30, 2),
        ("city_a".into(), 30, 3),
        ("city_b".into(), 24, 1),
        ("city_a".into(), 24, 1),
        ("city_b".into(), 30, 2),
    ];
    let mut references = std::collections::HashMap::new();
    for (city, t_out, seed) in &jobs {
        let context = &cities.iter().find(|(n, _)| n == city).unwrap().1;
        references
            .entry((city.clone(), *t_out, *seed))
            .or_insert_with(|| {
                model
                    .generate_batched_report(context, *t_out, *seed, true, 5)
                    .0
            });
    }

    std::thread::scope(|s| {
        let handles: Vec<_> = jobs
            .iter()
            .map(|(city, t_out, seed)| {
                let addr = server.addr.clone();
                s.spawn(move || {
                    let resp = request(
                        &addr,
                        "POST",
                        "/generate",
                        &gen_body(city, *t_out, *seed, 5, "bands"),
                    )
                    .unwrap();
                    assert_eq!(resp.status, 200, "{city} t={t_out} seed={seed}");
                    assemble_bands(&resp).unwrap()
                })
            })
            .collect();
        for (handle, (city, t_out, seed)) in handles.into_iter().zip(&jobs) {
            let got = handle.join().unwrap();
            let want = &references[&(city.clone(), *t_out, *seed)];
            assert_eq!(
                got.data(),
                want.data(),
                "{city} t={t_out} seed={seed}: served ≠ offline under concurrency"
            );
        }
    });
}

/// Shutdown drains: the handle stops the accept loop and `run`
/// returns; afterwards new connections are refused or reset.
#[test]
fn graceful_shutdown_stops_accepting() {
    let (dir, _, _) = fixture();
    let (server, _) = RunningServer::start(ServeConfig::new("127.0.0.1:0", &dir));
    let addr = server.addr.clone();

    // Server is live…
    assert_eq!(request(&addr, "GET", "/healthz", b"").unwrap().status, 200);
    // …then asked to stop (Drop also joins the run thread, proving the
    // loop exits).
    drop(server);
    // A fresh connection now fails at some layer — connect refusal or
    // an unanswered request.
    let after = request(&addr, "GET", "/healthz", b"");
    assert!(after.is_err(), "server must stop answering after shutdown");
}
