//! Dataset builders: the 13 reference cities.
//!
//! The paper's corpus is 9 cities in "Country 1" (CITY A–I) and 4 in
//! "Country 2" (CITY 1–4), with grids from 33×33 to 50×48 pixels
//! (§3.1). City extents here follow that range; [`DatasetConfig`]
//! scales them down for CPU-sized experiments (`fast` preset) or keeps
//! them at paper scale (`paper` preset).

use crate::process::{build_context, build_traffic, Latents, TemporalParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spectragan_geo::{City, GridSpec};

/// Configuration for one synthetic city.
#[derive(Debug, Clone)]
pub struct CityConfig {
    /// Display name, e.g. "CITY A".
    pub name: String,
    /// Grid height before scaling.
    pub height: usize,
    /// Grid width before scaling.
    pub width: usize,
    /// Seed for the city's hidden geography and traffic process.
    pub seed: u64,
}

/// Configuration for a dataset build.
#[derive(Debug, Clone, Copy)]
pub struct DatasetConfig {
    /// Duration of the series, in weeks.
    pub weeks: usize,
    /// Time steps per hour (1 = hourly, 2 = 30-min, 4 = 15-min).
    pub steps_per_hour: usize,
    /// Multiplier on city extents (1.0 = paper scale). The `fast`
    /// preset uses 0.5 so a 40×40 city becomes 20×20.
    pub size_scale: f64,
}

impl DatasetConfig {
    /// CPU-friendly preset: 1 week hourly, half-size cities. Training
    /// data in the paper's evaluation is also 1-week long (§4.1).
    pub fn fast() -> Self {
        DatasetConfig {
            weeks: 1,
            steps_per_hour: 1,
            size_scale: 0.5,
        }
    }

    /// Paper-scale preset: 6 weeks at 15-minute granularity, full-size
    /// cities (§3.1).
    pub fn paper() -> Self {
        DatasetConfig {
            weeks: 6,
            steps_per_hour: 4,
            size_scale: 1.0,
        }
    }

    /// Preset for the evaluation protocol of §4.1: 4 weeks hourly
    /// (1 training week + 3 generated weeks to compare against),
    /// half-size cities.
    pub fn eval() -> Self {
        DatasetConfig {
            weeks: 4,
            steps_per_hour: 1,
            size_scale: 0.5,
        }
    }

    /// Number of time steps this config produces.
    pub fn steps(&self) -> usize {
        self.weeks * 7 * 24 * self.steps_per_hour
    }

    fn scaled(&self, extent: usize) -> usize {
        ((extent as f64 * self.size_scale).round() as usize).max(12)
    }
}

/// Generates one city deterministically from its config.
pub fn generate_city(cfg: &CityConfig, ds: &DatasetConfig) -> City {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let grid = GridSpec::new(ds.scaled(cfg.height), ds.scaled(cfg.width));
    let latents = Latents::sample(grid, &mut rng);
    let context = build_context(&latents, &mut rng);
    let traffic = build_traffic(
        &latents,
        TemporalParams::weeks(ds.weeks, ds.steps_per_hour),
        &mut rng,
    );
    City::new(cfg.name.clone(), traffic, context)
}

/// Generates an *independent temporal realization* of the same city:
/// identical geography and context (drawn from `cfg.seed`), but the
/// traffic process re-rolled with `variant_seed`. This is how the
/// evaluation's DATA reference is built — the paper compares two
/// distinct real periods of one city; we compare two realizations of
/// one city's hidden process.
pub fn generate_city_variant(cfg: &CityConfig, ds: &DatasetConfig, variant_seed: u64) -> City {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let grid = GridSpec::new(ds.scaled(cfg.height), ds.scaled(cfg.width));
    let latents = Latents::sample(grid, &mut rng);
    let context = build_context(&latents, &mut rng);
    let mut vrng = StdRng::seed_from_u64(variant_seed ^ cfg.seed.rotate_left(17));
    let traffic = build_traffic(
        &latents,
        TemporalParams::weeks(ds.weeks, ds.steps_per_hour),
        &mut vrng,
    );
    City::new(cfg.name.clone(), traffic, context)
}

/// Grid extents for the 9 Country 1 cities (within the paper's
/// 33×33 … 50×48 range).
const COUNTRY1: [(&str, usize, usize, u64); 9] = [
    ("CITY A", 33, 33, 0xA1),
    ("CITY B", 50, 48, 0xB2),
    ("CITY C", 40, 40, 0xC3),
    ("CITY D", 36, 44, 0xD4),
    ("CITY E", 38, 38, 0xE5),
    ("CITY F", 42, 36, 0xF6),
    ("CITY G", 45, 40, 0x07),
    ("CITY H", 34, 42, 0x18),
    ("CITY I", 39, 39, 0x29),
];

/// Grid extents for the 4 Country 2 cities.
const COUNTRY2: [(&str, usize, usize, u64); 4] = [
    ("CITY 1", 36, 36, 0x3A),
    ("CITY 2", 44, 40, 0x4B),
    ("CITY 3", 33, 38, 0x5C),
    ("CITY 4", 40, 45, 0x6D),
];

/// The configurations of the 9 Country 1 cities (for callers that need
/// variants via [`generate_city_variant`]).
pub fn country1_configs() -> Vec<CityConfig> {
    COUNTRY1
        .iter()
        .map(|&(name, h, w, seed)| CityConfig {
            name: name.into(),
            height: h,
            width: w,
            seed,
        })
        .collect()
}

/// The configurations of the 4 Country 2 cities.
pub fn country2_configs() -> Vec<CityConfig> {
    COUNTRY2
        .iter()
        .map(|&(name, h, w, seed)| CityConfig {
            name: name.into(),
            height: h,
            width: w,
            seed,
        })
        .collect()
}

/// Builds the 9-city Country 1 dataset.
pub fn country1(ds: &DatasetConfig) -> Vec<City> {
    COUNTRY1
        .iter()
        .map(|&(name, h, w, seed)| {
            generate_city(
                &CityConfig {
                    name: name.into(),
                    height: h,
                    width: w,
                    seed,
                },
                ds,
            )
        })
        .collect()
}

/// Builds the 4-city Country 2 dataset. A different seed space (and a
/// traffic-level offset via the seeds) stands in for the different
/// operator; the two datasets are never mixed, as in §4.1.
pub fn country2(ds: &DatasetConfig) -> Vec<City> {
    COUNTRY2
        .iter()
        .map(|&(name, h, w, seed)| {
            generate_city(
                &CityConfig {
                    name: name.into(),
                    height: h,
                    width: w,
                    seed,
                },
                ds,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let ds = DatasetConfig {
            weeks: 1,
            steps_per_hour: 1,
            size_scale: 0.4,
        };
        let cfg = CityConfig {
            name: "X".into(),
            height: 33,
            width: 33,
            seed: 7,
        };
        let a = generate_city(&cfg, &ds);
        let b = generate_city(&cfg, &ds);
        assert_eq!(a.traffic.data(), b.traffic.data());
        assert_eq!(a.context.data(), b.context.data());
    }

    #[test]
    fn different_seeds_give_different_cities() {
        let ds = DatasetConfig {
            weeks: 1,
            steps_per_hour: 1,
            size_scale: 0.4,
        };
        let a = generate_city(
            &CityConfig {
                name: "X".into(),
                height: 33,
                width: 33,
                seed: 1,
            },
            &ds,
        );
        let b = generate_city(
            &CityConfig {
                name: "Y".into(),
                height: 33,
                width: 33,
                seed: 2,
            },
            &ds,
        );
        assert_ne!(a.traffic.data(), b.traffic.data());
    }

    #[test]
    fn config_scales_extents_and_steps() {
        let ds = DatasetConfig::fast();
        assert_eq!(ds.steps(), 168);
        let city = generate_city(
            &CityConfig {
                name: "X".into(),
                height: 40,
                width: 40,
                seed: 3,
            },
            &ds,
        );
        assert_eq!(city.traffic.height(), 20);
        assert_eq!(city.traffic.len_t(), 168);
        assert_eq!(city.context.channels(), 27);
    }

    #[test]
    fn variant_shares_context_but_not_traffic() {
        let ds = DatasetConfig {
            weeks: 1,
            steps_per_hour: 1,
            size_scale: 0.4,
        };
        let cfg = CityConfig {
            name: "V".into(),
            height: 33,
            width: 33,
            seed: 9,
        };
        let base = generate_city(&cfg, &ds);
        let var = generate_city_variant(&cfg, &ds, 1234);
        assert_eq!(base.context.data(), var.context.data());
        assert_ne!(base.traffic.data(), var.traffic.data());
        // Same hidden process: the time-averaged maps stay similar.
        let a = base.traffic.mean_map();
        let b = var.traffic.mean_map();
        let mut cov = 0.0;
        let (ma, mb) = (
            a.iter().sum::<f64>() / a.len() as f64,
            b.iter().sum::<f64>() / b.len() as f64,
        );
        let (mut va, mut vb) = (0.0, 0.0);
        for (&x, &y) in a.iter().zip(&b) {
            cov += (x - ma) * (y - mb);
            va += (x - ma) * (x - ma);
            vb += (y - mb) * (y - mb);
        }
        let pcc = cov / (va.sqrt() * vb.sqrt());
        // The exact value depends on the RNG stream: one simulated week
        // is a small sample, so two realizations' mean maps correlate
        // well but not perfectly. Unrelated cities sit near zero, so a
        // loose floor still pins down "same hidden process".
        assert!(pcc > 0.75, "realizations diverge spatially: {pcc}");
    }

    #[test]
    fn country_datasets_have_paper_city_counts() {
        let ds = DatasetConfig {
            weeks: 1,
            steps_per_hour: 1,
            size_scale: 0.35,
        };
        let c1 = country1(&ds);
        let c2 = country2(&ds);
        assert_eq!(c1.len(), 9);
        assert_eq!(c2.len(), 4);
        assert_eq!(c1[0].name, "CITY A");
        assert_eq!(c2[3].name, "CITY 4");
        // Cities differ in extent (the paper's arbitrary-size property).
        let sizes: std::collections::HashSet<(usize, usize)> = c1
            .iter()
            .map(|c| (c.traffic.height(), c.traffic.width()))
            .collect();
        assert!(sizes.len() > 3, "city sizes too uniform");
    }
}
