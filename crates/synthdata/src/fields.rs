//! Smooth random scalar fields over a grid — the latent geography the
//! simulator builds cities from.

use rand::Rng;
use spectragan_geo::GridSpec;

/// A scalar field over a grid, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    grid: GridSpec,
    data: Vec<f64>,
}

impl Field {
    /// Zero field.
    pub fn zeros(grid: GridSpec) -> Self {
        Field {
            grid,
            data: vec![0.0; grid.num_pixels()],
        }
    }

    /// Field from a closure of pixel coordinates.
    pub fn from_fn(grid: GridSpec, f: impl Fn(usize, usize) -> f64) -> Self {
        let data = grid.iter().map(|(y, x)| f(y, x)).collect();
        Field { grid, data }
    }

    /// The underlying grid.
    pub fn grid(&self) -> GridSpec {
        self.grid
    }

    /// Read-only values, row-major.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Value at `(y, x)`.
    #[inline]
    pub fn at(&self, y: usize, x: usize) -> f64 {
        self.data[self.grid.index(y, x)]
    }

    /// Mutable value at `(y, x)`.
    #[inline]
    pub fn at_mut(&mut self, y: usize, x: usize) -> &mut f64 {
        let i = self.grid.index(y, x);
        &mut self.data[i]
    }

    /// A mixture of isotropic Gaussian bumps: `centers` are
    /// `(y, x, sigma, weight)`.
    pub fn gaussian_bumps(grid: GridSpec, centers: &[(f64, f64, f64, f64)]) -> Self {
        Field::from_fn(grid, |y, x| {
            centers
                .iter()
                .map(|&(cy, cx, sigma, w)| {
                    let d2 = (y as f64 - cy).powi(2) + (x as f64 - cx).powi(2);
                    w * (-d2 / (2.0 * sigma * sigma)).exp()
                })
                .sum()
        })
    }

    /// White noise `N(0, 1)` smoothed by `passes` of 3×3 box blur —
    /// cheap correlated noise.
    pub fn smooth_noise(grid: GridSpec, passes: usize, rng: &mut impl Rng) -> Self {
        let mut f = Field::from_fn(grid, |_, _| 0.0);
        for v in &mut f.data {
            // Box–Muller for normality without distribution adapters.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            *v = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
        for _ in 0..passes {
            f = f.box_blur();
        }
        // Re-standardize: blurring shrinks the variance.
        f.standardize();
        f
    }

    /// One pass of 3×3 box blur (edge pixels average their in-grid
    /// neighbourhood).
    pub fn box_blur(&self) -> Field {
        let g = self.grid;
        Field::from_fn(g, |y, x| {
            let mut acc = 0.0;
            let mut n = 0.0;
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let (yy, xx) = (y as i64 + dy, x as i64 + dx);
                    if yy >= 0 && xx >= 0 && (yy as usize) < g.height && (xx as usize) < g.width {
                        acc += self.at(yy as usize, xx as usize);
                        n += 1.0;
                    }
                }
            }
            acc / n
        })
    }

    /// Standardizes to zero mean and unit variance in place (no-op for
    /// constant fields).
    pub fn standardize(&mut self) {
        let n = self.data.len() as f64;
        let mean = self.data.iter().sum::<f64>() / n;
        let var = self.data.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        let std = var.sqrt();
        if std > 1e-12 {
            for v in &mut self.data {
                *v = (*v - mean) / std;
            }
        }
    }

    /// Rescales linearly so min → 0 and max → 1 (constant fields → 0).
    pub fn normalize01(&mut self) {
        let min = self.data.iter().copied().fold(f64::INFINITY, f64::min);
        let max = self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = max - min;
        if span > 1e-12 {
            for v in &mut self.data {
                *v = (*v - min) / span;
            }
        } else {
            self.data.fill(0.0);
        }
    }

    /// Pointwise linear combination `a·self + b·other`.
    pub fn lin_comb(&self, a: f64, other: &Field, b: f64) -> Field {
        assert_eq!(self.grid, other.grid, "field grids differ");
        Field {
            grid: self.grid,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&x, &y)| a * x + b * y)
                .collect(),
        }
    }

    /// Pointwise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Field {
        Field {
            grid: self.grid,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Pearson correlation with another field on the same grid
    /// (0 when either field is constant).
    pub fn pearson(&self, other: &Field) -> f64 {
        assert_eq!(self.grid, other.grid, "field grids differ");
        let n = self.data.len() as f64;
        let ma = self.data.iter().sum::<f64>() / n;
        let mb = other.data.iter().sum::<f64>() / n;
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for (&a, &b) in self.data.iter().zip(&other.data) {
            cov += (a - ma) * (b - mb);
            va += (a - ma) * (a - ma);
            vb += (b - mb) * (b - mb);
        }
        if va <= 1e-12 || vb <= 1e-12 {
            return 0.0;
        }
        cov / (va.sqrt() * vb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid() -> GridSpec {
        GridSpec::new(20, 20)
    }

    #[test]
    fn gaussian_bump_peaks_at_center() {
        let f = Field::gaussian_bumps(grid(), &[(10.0, 10.0, 3.0, 2.0)]);
        assert!((f.at(10, 10) - 2.0).abs() < 1e-9);
        assert!(f.at(0, 0) < 0.01);
        assert!(f.at(10, 11) < f.at(10, 10));
    }

    #[test]
    fn smooth_noise_is_standardized_and_correlated() {
        let mut rng = StdRng::seed_from_u64(0);
        let f = Field::smooth_noise(grid(), 3, &mut rng);
        let mean = f.data().iter().sum::<f64>() / 400.0;
        let var = f.data().iter().map(|v| (v - mean).powi(2)).sum::<f64>() / 400.0;
        assert!(mean.abs() < 1e-9);
        assert!((var - 1.0).abs() < 1e-9);
        // Neighbouring pixels must correlate after blurring: shift by one.
        let shifted = Field::from_fn(grid(), |y, x| f.at(y, (x + 1).min(19)));
        assert!(f.pearson(&shifted) > 0.5, "pcc {}", f.pearson(&shifted));
    }

    #[test]
    fn normalize01_bounds() {
        let mut f = Field::from_fn(grid(), |y, x| (y + x) as f64);
        f.normalize01();
        assert!((f.at(0, 0)).abs() < 1e-12);
        assert!((f.at(19, 19) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_self_is_one_and_of_negation_is_minus_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = Field::smooth_noise(grid(), 1, &mut rng);
        assert!((f.pearson(&f) - 1.0).abs() < 1e-9);
        let neg = f.map(|v| -v);
        assert!((f.pearson(&neg) + 1.0).abs() < 1e-9);
        let constant = Field::zeros(grid());
        assert_eq!(f.pearson(&constant), 0.0);
    }

    #[test]
    fn lin_comb_is_pointwise() {
        let a = Field::from_fn(grid(), |_, _| 2.0);
        let b = Field::from_fn(grid(), |_, _| 3.0);
        let c = a.lin_comb(0.5, &b, 2.0);
        assert!((c.at(5, 5) - 7.0).abs() < 1e-12);
    }
}
