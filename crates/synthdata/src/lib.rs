//! Ground-truth city simulator — the stand-in for the paper's
//! proprietary operator measurements.
//!
//! The paper evaluates on mobile traffic recorded by two European
//! operators in 13 cities (9 in "Country 1", 4 in "Country 2"), on a
//! 250 m grid at 15-minute granularity over 6 weeks, normalized per
//! city by the peak pixel (§3.1). That data is NDA-gated, so this crate
//! implements a *hidden generative process* with exactly the
//! statistical properties the paper measures and the models exploit:
//!
//! * **Context** (27 attributes of Table 1) is derived from shared
//!   latent urbanization fields so that each attribute's Pearson
//!   correlation with time-averaged traffic lands near the mean PCC the
//!   paper reports — census strongest (≈0.6), barren lands most
//!   negative (≈−0.28), etc.
//! * **Traffic** at each pixel is a small sum of the significant
//!   frequency components the paper identifies (weekly, daily and
//!   intra-day harmonics; Fig. 1d), with context-dependent amplitude
//!   (log-normal across space, Appendix A) and context-dependent phase
//!   (commercial areas peak near noon, residential in the evening —
//!   the source of the peak-hour diversity in Fig. 9).
//! * **Traffic flows** (Fig. 2): a commuter corridor moves a localized
//!   traffic bump across the city through the day, so the peak
//!   *location* shifts hour to hour — the spatiotemporal correlation
//!   DoppelGANger-style per-pixel models cannot capture.
//! * **Residual**: per-pixel AR(1) noise models the small non-periodic
//!   fluctuations (Fig. 1f).
//!
//! Because the process is *context → periodic + residual traffic*, it
//! exercises the same code paths real data would: every fidelity metric
//! in `spectragan-metrics`, every model in `spectragan-core` and
//! `spectragan-baselines`, and every use case in `spectragan-apps`
//! operates on these maps exactly as it would on operator exports.

pub mod dataset;
pub mod fields;
pub mod process;

pub use dataset::{
    country1, country1_configs, country2, country2_configs, generate_city, generate_city_variant,
    CityConfig, DatasetConfig,
};
pub use fields::Field;
pub use process::inject_event;
