//! The hidden context → traffic process.
//!
//! This module is the "operator" of the simulation: it decides the true
//! relationship between a city's geography and its mobile traffic. The
//! generative models under evaluation never see these internals — only
//! the resulting [`ContextMap`]s and [`TrafficMap`]s — mirroring how
//! the paper's models only see measurement exports.

use crate::fields::Field;
use rand::Rng;
use spectragan_geo::context::{ATTRIBUTES, NUM_ATTRIBUTES};
use spectragan_geo::{ContextMap, GridSpec, TrafficMap};

/// Latent geography of a city: everything the hidden process derives
/// context and traffic from.
pub struct Latents {
    /// Urbanization intensity in `[0, 1]` (bumps at city centers).
    pub urban: Field,
    /// Standardized urbanization (zero mean, unit variance).
    pub urban_std: Field,
    /// Industrial/commercial intensity in `[0, 1]`.
    pub industrial: Field,
    /// Commuter corridor endpoints `(residential, business)` in pixel
    /// coordinates, driving the daily traffic flow of Fig. 2.
    pub corridor: ((f64, f64), (f64, f64)),
}

impl Latents {
    /// Draws latent geography for a grid: 2–4 urban centers, one
    /// industrial zone, and a commuter corridor between the strongest
    /// residential bump and the main center.
    pub fn sample(grid: GridSpec, rng: &mut impl Rng) -> Latents {
        let (h, w) = (grid.height as f64, grid.width as f64);
        let n_centers = rng.gen_range(2..=4);
        let mut centers = Vec::with_capacity(n_centers);
        // Main center near the middle; secondaries anywhere.
        centers.push((
            h * rng.gen_range(0.4..0.6),
            w * rng.gen_range(0.4..0.6),
            (h.min(w)) * rng.gen_range(0.18..0.28),
            1.0,
        ));
        for _ in 1..n_centers {
            centers.push((
                h * rng.gen_range(0.15..0.85),
                w * rng.gen_range(0.15..0.85),
                (h.min(w)) * rng.gen_range(0.08..0.16),
                rng.gen_range(0.35..0.7),
            ));
        }
        let mut urban = Field::gaussian_bumps(grid, &centers);
        let rough = Field::smooth_noise(grid, 2, rng);
        urban = urban.lin_comb(1.0, &rough, 0.08);
        urban.normalize01();
        let mut urban_std = urban.clone();
        urban_std.standardize();

        let ind_center = (
            h * rng.gen_range(0.2..0.8),
            w * rng.gen_range(0.2..0.8),
            (h.min(w)) * rng.gen_range(0.1..0.2),
            1.0,
        );
        let mut industrial = Field::gaussian_bumps(grid, &[ind_center]);
        industrial.normalize01();

        let residential = (
            centers.last().expect("centers non-empty").0,
            centers.last().expect("centers non-empty").1,
        );
        let business = (centers[0].0, centers[0].1);
        Latents {
            urban,
            urban_std,
            industrial,
            corridor: (residential, business),
        }
    }
}

/// Builds the 27-attribute context map from the latents so that each
/// attribute correlates with urbanization (and hence with traffic) at
/// roughly its Table 1 PCC: `attr = ρ·U_std + √(1−ρ²)·noise`, with a
/// pinch of the industrial field for the work-related attributes.
pub fn build_context(latents: &Latents, rng: &mut impl Rng) -> ContextMap {
    let grid = latents.urban.grid();
    let mut ctx = ContextMap::zeros(NUM_ATTRIBUTES, grid.height, grid.width);
    let mut ind_std = latents.industrial.clone();
    ind_std.standardize();
    for (k, (name, pcc)) in ATTRIBUTES.iter().enumerate() {
        let noise = Field::smooth_noise(grid, 1, rng);
        let rho = *pcc;
        let mut field = latents
            .urban_std
            .lin_comb(rho, &noise, (1.0 - rho * rho).max(0.0).sqrt());
        if matches!(
            *name,
            "Industrial/Commercial" | "Office" | "Parking" | "Air/Sea Ports"
        ) {
            // Work attributes also track the industrial zone; the extra
            // term is small enough not to destroy the target PCC.
            field = field.lin_comb(1.0, &ind_std, 0.25);
        }
        for (y, x) in grid.iter() {
            *ctx.at_mut(k, y, x) = field.at(y, x) as f32;
        }
    }
    ctx
}

/// Temporal parameters of the hidden process.
#[derive(Debug, Clone, Copy)]
pub struct TemporalParams {
    /// Number of time steps to generate.
    pub steps: usize,
    /// Time steps per hour (1 = hourly, 4 = 15-minute).
    pub steps_per_hour: usize,
}

impl TemporalParams {
    /// `weeks` of data at `steps_per_hour` resolution.
    pub fn weeks(weeks: usize, steps_per_hour: usize) -> Self {
        TemporalParams {
            steps: weeks * 7 * 24 * steps_per_hour,
            steps_per_hour,
        }
    }
}

/// Weekly modulation: weekdays full load, Saturday 0.85, Sunday 0.7 —
/// the weekday/weekend dichotomy of §2.1.3.
pub fn weekday_factor(hour: f64) -> f64 {
    match ((hour / 24.0).floor() as usize) % 7 {
        5 => 0.85,
        6 => 0.70,
        _ => 1.0,
    }
}

/// Diurnal profile at `hour` (hours since series start) for a pixel
/// with peak phase `phase` (hour of day of its main peak): DC plus the
/// daily fundamental and its first harmonic — exactly the "few
/// significant components" structure of Fig. 1d.
pub fn diurnal_profile(hour: f64, phase: f64) -> f64 {
    let omega = 2.0 * std::f64::consts::PI / 24.0;
    let v =
        1.0 + 0.85 * (omega * (hour - phase)).cos() + 0.25 * (2.0 * omega * (hour - phase)).cos();
    v.max(0.0)
}

/// Position of the commuter bump at `hour`, moving from the
/// residential end (overnight) to the business end (working hours) and
/// back — the moving peak of Fig. 2.
pub fn corridor_position(corridor: &((f64, f64), (f64, f64)), hour: f64) -> (f64, f64) {
    let h = hour.rem_euclid(24.0);
    // 0 at night (residential), 1 during 10:00–16:00 (business).
    let s = if h < 6.0 {
        0.0
    } else if h < 10.0 {
        (h - 6.0) / 4.0
    } else if h < 16.0 {
        1.0
    } else if h < 21.0 {
        1.0 - (h - 16.0) / 5.0
    } else {
        0.0
    };
    let (res, biz) = corridor;
    (res.0 + s * (biz.0 - res.0), res.1 + s * (biz.1 - res.1))
}

/// Builds the traffic tensor from the latents. See the module docs for
/// the composition: log-normal spatial amplitude × diurnal profile ×
/// weekly factor + commuter flow + AR(1) residual, clipped at zero and
/// peak-normalized.
pub fn build_traffic(latents: &Latents, tp: TemporalParams, rng: &mut impl Rng) -> TrafficMap {
    let grid = latents.urban.grid();
    let (h, w) = (grid.height, grid.width);
    let n_px = grid.num_pixels();

    // --- Static per-pixel structure -----------------------------------
    // Log-normal amplitude: exp(1.4·U + 0.25·z) — strongly urban pixels
    // carry orders of magnitude more traffic (Appendix A marginals).
    let amp_noise = Field::smooth_noise(grid, 1, rng);
    let amp: Vec<f64> = grid
        .iter()
        .map(|(y, x)| (1.4 * latents.urban.at(y, x) * 2.0 + 0.25 * amp_noise.at(y, x)).exp() - 0.85)
        .map(|v| v.max(0.02))
        .collect();
    // Peak phase: residential pixels peak ~19:00, industrial ~12:30.
    let phase_noise = Field::smooth_noise(grid, 1, rng);
    let phase: Vec<f64> = grid
        .iter()
        .map(|(y, x)| 19.0 - 6.5 * latents.industrial.at(y, x) + 0.6 * phase_noise.at(y, x))
        .collect();

    // --- Time loop ------------------------------------------------------
    let sigma_f = (h.min(w) as f64) * 0.12;
    let flow_amp = 0.9;
    let mut residual = vec![0.0f64; n_px];
    let mut out = TrafficMap::zeros(tp.steps, h, w);
    for t in 0..tp.steps {
        let hour = t as f64 / tp.steps_per_hour as f64;
        let wk = weekday_factor(hour);
        let (fy, fx) = corridor_position(&latents.corridor, hour);
        // The corridor only carries traffic while people are moving or
        // at work (06:00–21:00).
        let hod = hour.rem_euclid(24.0);
        let gate = if (6.0..21.0).contains(&hod) {
            1.0
        } else {
            0.15
        };
        for (i, (y, x)) in grid.iter().enumerate() {
            // AR(1) residual, updated per step.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let eps = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            residual[i] = 0.7 * residual[i] + 0.05 * eps;

            let periodic = amp[i] * diurnal_profile(hour, phase[i]) * wk;
            let d2 = (y as f64 - fy).powi(2) + (x as f64 - fx).powi(2);
            let flow = flow_amp * gate * wk * (-d2 / (2.0 * sigma_f * sigma_f)).exp();
            let v = (periodic + flow + amp[i] * residual[i]).max(0.0);
            *out.at_mut(t, y, x) = v as f32;
        }
    }
    out.normalize_peak();
    out
}

/// Injects a special event into existing traffic: a localized surge at
/// `(y, x)` with spatial spread `sigma` pixels, active during
/// `start..start + duration` steps, with peak relative magnitude
/// `magnitude` (1.0 doubles traffic at the epicenter mid-event).
///
/// Events are *anomalies* relative to the periodic process — the kind
/// of input a downstream anomaly detector (or a robustness study of
/// the generative models) needs. The temporal envelope is a raised
/// cosine, so the surge ramps in and out smoothly.
pub fn inject_event(
    traffic: &TrafficMap,
    epicenter: (usize, usize),
    sigma: f64,
    start: usize,
    duration: usize,
    magnitude: f64,
) -> TrafficMap {
    assert!(duration > 0, "event must last at least one step");
    assert!(start < traffic.len_t(), "event starts beyond the series");
    let mut out = traffic.clone();
    let end = (start + duration).min(traffic.len_t());
    let (ey, ex) = epicenter;
    for t in start..end {
        let phase = (t - start) as f64 / duration as f64;
        let envelope = 0.5 - 0.5 * (2.0 * std::f64::consts::PI * phase).cos();
        for y in 0..traffic.height() {
            for x in 0..traffic.width() {
                let d2 = (y as f64 - ey as f64).powi(2) + (x as f64 - ex as f64).powi(2);
                let spatial = (-d2 / (2.0 * sigma * sigma)).exp();
                let boost = 1.0 + magnitude * envelope * spatial;
                *out.at_mut(t, y, x) = (traffic.at(t, y, x) as f64 * boost) as f32;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spectragan_dsp::{magnitude, rfft};

    fn small_city() -> (Latents, ContextMap, TrafficMap) {
        let mut rng = StdRng::seed_from_u64(11);
        let grid = GridSpec::new(20, 20);
        let latents = Latents::sample(grid, &mut rng);
        let ctx = build_context(&latents, &mut rng);
        let traffic = build_traffic(&latents, TemporalParams::weeks(1, 1), &mut rng);
        (latents, ctx, traffic)
    }

    fn mean_field(traffic: &TrafficMap) -> Field {
        let mm = traffic.mean_map();
        let grid = traffic.grid();
        Field::from_fn(grid, |y, x| mm[grid.index(y, x)])
    }

    #[test]
    fn census_correlates_strongly_with_traffic() {
        let (_, ctx, traffic) = small_city();
        let grid = traffic.grid();
        let census = Field::from_fn(grid, |y, x| ctx.at(0, y, x) as f64);
        let pcc = census.pearson(&mean_field(&traffic));
        assert!(pcc > 0.35, "census PCC too weak: {pcc}");
    }

    #[test]
    fn barren_lands_anticorrelate_with_traffic() {
        let (_, ctx, traffic) = small_city();
        let grid = traffic.grid();
        // Channel 11 is "Barren Lands" (target −0.281).
        let barren = Field::from_fn(grid, |y, x| ctx.at(11, y, x) as f64);
        let pcc = barren.pearson(&mean_field(&traffic));
        assert!(pcc < -0.05, "barren PCC should be negative: {pcc}");
    }

    #[test]
    fn traffic_is_normalized_and_nonnegative() {
        let (_, _, traffic) = small_city();
        let max = traffic.data().iter().copied().fold(0.0f32, f32::max);
        let min = traffic.data().iter().copied().fold(1.0f32, f32::min);
        assert!((max - 1.0).abs() < 1e-6);
        assert!(min >= 0.0);
    }

    #[test]
    fn spectrum_is_dominated_by_daily_and_weekly_bins() {
        let (_, _, traffic) = small_city();
        let series = traffic.city_series();
        let spec = rfft(&series);
        let mags = magnitude(&spec[1..]); // skip DC
        let daily_bin = 7 - 1; // 168-hour series: bin 7 = 24 h period (index 6 after skip)
        let top: f64 = mags[daily_bin];
        let median = {
            let mut m = mags.clone();
            m.sort_by(|a, b| a.partial_cmp(b).unwrap());
            m[m.len() / 2]
        };
        assert!(top > 10.0 * median, "daily bin {top} vs median {median}");
    }

    #[test]
    fn weekend_traffic_is_lower_than_weekday() {
        let (_, _, traffic) = small_city();
        let series = traffic.city_series();
        let weekday: f64 = series[0..24].iter().sum();
        let sunday: f64 = series[144..168].iter().sum();
        assert!(
            sunday < 0.9 * weekday,
            "sunday {sunday} vs weekday {weekday}"
        );
    }

    #[test]
    fn peak_location_moves_between_morning_and_midday() {
        // Fig. 2: the argmax pixel must move as the corridor activates.
        let (_, _, traffic) = small_city();
        let argmax = |t: usize| {
            let f = traffic.frame(t);
            let (mut bi, mut bv) = (0usize, f32::MIN);
            for (i, &v) in f.iter().enumerate() {
                if v > bv {
                    bv = v;
                    bi = i;
                }
            }
            (bi / traffic.width(), bi % traffic.width())
        };
        let night = argmax(3); // 03:00
        let noon = argmax(12); // 12:00
        let dist = ((night.0 as f64 - noon.0 as f64).powi(2)
            + (night.1 as f64 - noon.1 as f64).powi(2))
        .sqrt();
        assert!(
            dist > 1.0,
            "peak did not move: night {night:?} noon {noon:?}"
        );
    }

    #[test]
    fn peak_hours_are_diverse_across_pixels() {
        // Fig. 9: industrial pixels peak near noon, residential in the
        // evening — the per-pixel peak-hour distribution must spread.
        let (_, _, traffic) = small_city();
        let mut hours = Vec::new();
        for y in 0..traffic.height() {
            for x in 0..traffic.width() {
                let s = traffic.pixel_series(y, x);
                let day: Vec<f64> = (0..24)
                    .map(|h| (0..5).map(|d| s[d * 24 + h]).sum::<f64>())
                    .collect();
                let (mut bi, mut bv) = (0usize, f64::MIN);
                for (i, &v) in day.iter().enumerate() {
                    if v > bv {
                        bv = v;
                        bi = i;
                    }
                }
                hours.push(bi);
            }
        }
        let min = *hours.iter().min().unwrap();
        let max = *hours.iter().max().unwrap();
        assert!(max - min >= 4, "peak hours not diverse: {min}..{max}");
    }

    #[test]
    fn injected_event_is_local_in_space_and_time() {
        let (_, _, traffic) = small_city();
        let boosted = inject_event(&traffic, (10, 10), 2.0, 50, 10, 2.0);
        // Mid-event at the epicenter: strongly boosted.
        let before = traffic.at(55, 10, 10);
        let after = boosted.at(55, 10, 10);
        if before > 0.0 {
            assert!(after > 1.5 * before, "{before} -> {after}");
        }
        // Outside the window: untouched.
        assert_eq!(boosted.at(10, 10, 10), traffic.at(10, 10, 10));
        assert_eq!(boosted.at(70, 10, 10), traffic.at(70, 10, 10));
        // Far away in space: barely touched.
        let far_before = traffic.at(55, 0, 0);
        let far_after = boosted.at(55, 0, 0);
        assert!((far_after - far_before).abs() <= 0.01 * far_before.max(0.01));
    }

    #[test]
    #[should_panic(expected = "beyond the series")]
    fn event_start_is_validated() {
        let (_, _, traffic) = small_city();
        inject_event(&traffic, (0, 0), 1.0, 10_000, 5, 1.0);
    }

    #[test]
    fn corridor_position_is_at_endpoints_overnight_and_midday() {
        let corridor = ((0.0, 0.0), (10.0, 10.0));
        assert_eq!(corridor_position(&corridor, 2.0), (0.0, 0.0));
        assert_eq!(corridor_position(&corridor, 12.0), (10.0, 10.0));
        let (y, x) = corridor_position(&corridor, 8.0);
        assert!(y > 0.0 && y < 10.0 && x > 0.0 && x < 10.0);
    }

    #[test]
    fn weekday_factor_cycle() {
        assert_eq!(weekday_factor(0.0), 1.0); // Monday
        assert_eq!(weekday_factor(5.0 * 24.0), 0.85); // Saturday
        assert_eq!(weekday_factor(6.0 * 24.0 + 12.0), 0.70); // Sunday
        assert_eq!(weekday_factor(7.0 * 24.0), 1.0); // next Monday
    }
}
