//! Property-based tests of the hidden city process: the invariants the
//! evaluation relies on must hold for *any* seed, not just the 13
//! reference cities.

use proptest::prelude::*;
use spectragan_geo::context::NUM_ATTRIBUTES;
use spectragan_synthdata::{generate_city, generate_city_variant, CityConfig, DatasetConfig};

fn ds() -> DatasetConfig {
    DatasetConfig {
        weeks: 1,
        steps_per_hour: 1,
        size_scale: 0.4,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every generated city is well-formed: traffic in [0, 1] with peak
    /// exactly 1, full context stack, matching grids.
    #[test]
    fn cities_are_well_formed(seed in 0u64..5000) {
        let city = generate_city(
            &CityConfig { name: "P".into(), height: 34, width: 38, seed },
            &ds(),
        );
        prop_assert_eq!(city.context.channels(), NUM_ATTRIBUTES);
        prop_assert_eq!(city.traffic.height(), city.context.height());
        prop_assert_eq!(city.traffic.width(), city.context.width());
        prop_assert_eq!(city.traffic.len_t(), 168);
        let max = city.traffic.data().iter().cloned().fold(0.0f32, f32::max);
        let min = city.traffic.data().iter().cloned().fold(1.0f32, f32::min);
        prop_assert!((max - 1.0).abs() < 1e-6);
        prop_assert!(min >= 0.0);
    }

    /// The census↔traffic correlation is positive for any seed — the
    /// learnable signal every model depends on is always present.
    #[test]
    fn census_signal_always_present(seed in 0u64..5000) {
        let city = generate_city(
            &CityConfig { name: "P".into(), height: 33, width: 33, seed },
            &ds(),
        );
        let mean_map = city.traffic.mean_map();
        let census: Vec<f64> = city.context.channel(0).iter().map(|&v| v as f64).collect();
        let n = census.len() as f64;
        let (mc, mt) = (
            census.iter().sum::<f64>() / n,
            mean_map.iter().sum::<f64>() / n,
        );
        let mut cov = 0.0;
        let mut vc = 0.0;
        let mut vt = 0.0;
        for (c, t) in census.iter().zip(&mean_map) {
            cov += (c - mc) * (t - mt);
            vc += (c - mc) * (c - mc);
            vt += (t - mt) * (t - mt);
        }
        let pcc = cov / (vc.sqrt() * vt.sqrt());
        prop_assert!(pcc > 0.2, "census PCC {pcc} for seed {seed}");
    }

    /// Day and night differ: the diurnal signal exists for any seed.
    #[test]
    fn diurnal_signal_always_present(seed in 0u64..5000) {
        let city = generate_city(
            &CityConfig { name: "P".into(), height: 33, width: 33, seed },
            &ds(),
        );
        let series = city.traffic.city_series();
        // Average 13:00 vs 04:00 over the five weekdays.
        let day: f64 = (0..5).map(|d| series[d * 24 + 13]).sum();
        let night: f64 = (0..5).map(|d| series[d * 24 + 4]).sum();
        prop_assert!(day > 1.3 * night, "day {day} night {night} (seed {seed})");
    }

    /// Variants share geography but not noise, for any variant seed.
    #[test]
    fn variants_differ_only_temporally(seed in 0u64..1000, vseed in 1u64..1000) {
        let cfg = CityConfig { name: "P".into(), height: 33, width: 33, seed };
        let a = generate_city(&cfg, &ds());
        let b = generate_city_variant(&cfg, &ds(), vseed);
        prop_assert_eq!(a.context.data(), b.context.data());
        prop_assert_ne!(a.traffic.data(), b.traffic.data());
    }
}
