//! Thread-local buffer pool recycling tensor storage across steps.
//!
//! Every [`Tensor`](crate::Tensor) buffer is taken from and returned to
//! this arena: `Drop` recycles the `Vec<f32>`, constructors reuse a
//! recycled buffer of the same capacity when one is available. Training
//! graphs have constant shape from step to step, so after a one-step
//! warm-up the hot loop allocates nothing — clearing the tape
//! ([`Tape::reset_keep_capacity`](crate::Tape::reset_keep_capacity))
//! returns every activation and gradient buffer here instead of to the
//! allocator.
//!
//! # Lifetime rules
//!
//! * The pool is **thread-local**: a buffer is only ever reused on the
//!   thread that dropped it, so recycling needs no locks and cannot
//!   change cross-thread behaviour. Worker threads of
//!   [`crate::pool`] get their own (short-lived) arenas.
//! * Buffers are bucketed by exact capacity and handed out cleared
//!   (`len == 0`), so reuse can never leak stale values — every element
//!   the new owner reads was written by the new owner.
//! * The per-thread pool is capped ([`MAX_POOLED_BYTES`]); beyond the
//!   cap, recycled buffers fall through to the allocator as before.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};

/// Upper bound on bytes parked per thread (256 MiB). Steady-state
/// training keeps well under this; the cap only guards pathological
/// shape churn from hoarding memory.
pub const MAX_POOLED_BYTES: usize = 256 << 20;

/// Counters describing pool traffic since the last [`stats_take`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ArenaStats {
    /// Buffers served by a fresh heap allocation.
    pub fresh_allocs: u64,
    /// Bytes of those fresh allocations.
    pub fresh_bytes: u64,
    /// Buffers served from the pool without touching the allocator.
    pub reused: u64,
    /// Bytes served from the pool.
    pub reused_bytes: u64,
    /// Buffers returned to the pool on drop.
    pub recycled: u64,
    /// Buffers dropped because the pool was at capacity.
    pub dropped: u64,
}

/// Process-wide bytes currently handed out by [`take`] and not yet
/// returned via [`recycle`] — live tensor storage across *all* threads
/// (workers of [`crate::pool`] included), unlike the thread-local
/// counters above.
///
/// The count is approximate by design: buffers that enter a tensor from
/// outside the arena (e.g. [`crate::Tensor::from_vec`] over a caller's
/// `Vec`) are debited on drop without ever having been credited, and
/// buffers extracted with `into_vec` stay credited. Both flows are rare
/// and small on the hot paths this exists to watch (generation and
/// training), so the *high-water delta since a [`reset_high_water`]* is
/// a faithful peak-memory signal even though the absolute value drifts.
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);

/// Maximum of [`LIVE_BYTES`] since the last [`reset_high_water`].
static HIGH_WATER_BYTES: AtomicI64 = AtomicI64::new(0);

#[inline]
fn note_live(bytes: usize) {
    let live = LIVE_BYTES.fetch_add(bytes as i64, Ordering::Relaxed) + bytes as i64;
    HIGH_WATER_BYTES.fetch_max(live, Ordering::Relaxed);
}

#[inline]
fn note_dead(bytes: usize) {
    LIVE_BYTES.fetch_sub(bytes as i64, Ordering::Relaxed);
}

/// Process-wide live arena bytes right now (see [`LIVE_BYTES`] for the
/// accounting caveats).
pub fn live_bytes() -> i64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// Highest [`live_bytes`] observed since the last [`reset_high_water`].
pub fn high_water_bytes() -> i64 {
    HIGH_WATER_BYTES.load(Ordering::Relaxed)
}

/// Restarts the high-water tracking from the current live level.
/// Returns the live level the mark was reset to, so callers can report
/// the peak *delta* of the region they are about to run.
pub fn reset_high_water() -> i64 {
    let live = LIVE_BYTES.load(Ordering::Relaxed);
    HIGH_WATER_BYTES.store(live, Ordering::Relaxed);
    live
}

/// Scoped peak-memory measurement: [`begin`](PeakRegion::begin) resets
/// the high-water mark to the current live level, [`end`](PeakRegion::end)
/// returns the peak *delta* reached inside the region.
///
/// This is how callers should report per-run peaks — reading the raw
/// globals directly leaks state between back-to-back runs in one
/// process (an earlier run's mark pollutes the next report). Regions
/// still share the process-wide counters, so concurrent regions
/// observe each other's traffic; the workspace runs one generation or
/// training region at a time.
#[must_use = "call end() to read the region's peak"]
pub struct PeakRegion {
    base: i64,
}

impl PeakRegion {
    /// Starts a region: resets the high-water mark to the current
    /// live level.
    pub fn begin() -> Self {
        PeakRegion {
            base: reset_high_water(),
        }
    }

    /// Ends the region, returning the peak bytes allocated above the
    /// level at [`begin`](PeakRegion::begin) (clamped at 0: the
    /// approximate accounting can drift slightly negative).
    pub fn end(self) -> u64 {
        (high_water_bytes() - self.base).max(0) as u64
    }
}

struct Arena {
    /// Free buffers bucketed by exact capacity.
    buckets: HashMap<usize, Vec<Vec<f32>>>,
    pooled_bytes: usize,
    stats: ArenaStats,
}

impl Arena {
    fn new() -> Self {
        Arena {
            buckets: HashMap::new(),
            pooled_bytes: 0,
            stats: ArenaStats::default(),
        }
    }
}

thread_local! {
    static ARENA: RefCell<Arena> = RefCell::new(Arena::new());
}

/// Returns an empty `Vec<f32>` with capacity at least `n`, reusing a
/// pooled buffer of exactly that capacity when one is available.
pub fn take(n: usize) -> Vec<f32> {
    let bytes = (n * 4) as u64;
    let buf = ARENA
        .try_with(|a| {
            let mut a = a.borrow_mut();
            if let Some(bucket) = a.buckets.get_mut(&n) {
                if let Some(buf) = bucket.pop() {
                    a.pooled_bytes -= n * 4;
                    a.stats.reused += 1;
                    a.stats.reused_bytes += bytes;
                    crate::stats::note_pool_bytes(0, bytes);
                    return buf;
                }
            }
            a.stats.fresh_allocs += 1;
            a.stats.fresh_bytes += bytes;
            crate::stats::note_pool_bytes(bytes, 0);
            Vec::with_capacity(n)
        })
        // Thread teardown: the arena TLS is already gone — allocate.
        .unwrap_or_else(|_| Vec::with_capacity(n));
    note_live(buf.capacity() * 4);
    buf
}

/// [`take`] followed by zero-filling to length `n`.
pub fn take_zeroed(n: usize) -> Vec<f32> {
    let mut v = take(n);
    v.resize(n, 0.0);
    v
}

/// [`take`] followed by filling to length `n` with `value`.
pub fn take_filled(n: usize, value: f32) -> Vec<f32> {
    let mut v = take(n);
    v.resize(n, value);
    v
}

/// [`take`] followed by copying `src` into the buffer.
pub fn clone_buf(src: &[f32]) -> Vec<f32> {
    let mut v = take(src.len());
    v.extend_from_slice(src);
    v
}

/// Returns a buffer to the pool (called by `Tensor`'s `Drop`). Buffers
/// with zero capacity, or arriving when the pool is at its byte cap,
/// fall through to the allocator.
pub fn recycle(mut buf: Vec<f32>) {
    let cap = buf.capacity();
    if cap == 0 {
        return;
    }
    note_dead(cap * 4);
    let _ = ARENA.try_with(|a| {
        let mut a = a.borrow_mut();
        if a.pooled_bytes + cap * 4 > MAX_POOLED_BYTES {
            a.stats.dropped += 1;
            return;
        }
        buf.clear();
        a.pooled_bytes += cap * 4;
        a.stats.recycled += 1;
        a.buckets.entry(cap).or_default().push(buf);
    });
}

/// Snapshot of this thread's pool counters without resetting them.
pub fn stats_snapshot() -> ArenaStats {
    ARENA.try_with(|a| a.borrow().stats).unwrap_or_default()
}

/// Takes and resets this thread's pool counters (per-step accounting).
pub fn stats_take() -> ArenaStats {
    ARENA
        .try_with(|a| std::mem::take(&mut a.borrow_mut().stats))
        .unwrap_or_default()
}

/// Bytes currently parked in this thread's pool.
pub fn pooled_bytes() -> usize {
    ARENA.try_with(|a| a.borrow().pooled_bytes).unwrap_or(0)
}

/// Drops every pooled buffer on this thread (tests / memory pressure).
pub fn clear() {
    let _ = ARENA.try_with(|a| {
        let mut a = a.borrow_mut();
        a.buckets.clear();
        a.pooled_bytes = 0;
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_reuses_exact_capacity() {
        clear();
        stats_take();
        let v = take_zeroed(1000);
        assert_eq!(v.len(), 1000);
        let cap = v.capacity();
        recycle(v);
        let w = take(cap);
        assert_eq!(w.capacity(), cap);
        assert!(w.is_empty(), "reused buffers must come back cleared");
        let s = stats_take();
        assert_eq!(s.reused, 1);
        assert_eq!(s.recycled, 1);
    }

    #[test]
    fn mismatched_capacity_allocates_fresh() {
        clear();
        stats_take();
        recycle(take_zeroed(64));
        let _v = take(128);
        let s = stats_take();
        assert_eq!(s.reused, 0);
        assert_eq!(s.fresh_allocs, 2);
    }

    #[test]
    fn zero_capacity_buffers_are_ignored() {
        clear();
        stats_take();
        recycle(Vec::new());
        assert_eq!(stats_take().recycled, 0);
    }

    /// The global live/high-water counters see a large allocation and
    /// its release. Other tests allocate concurrently, so the
    /// assertions are lower bounds around a buffer far bigger than any
    /// unit-test churn.
    #[test]
    fn high_water_tracks_large_allocations() {
        const BIG: usize = 1 << 22; // 16 MiB of f32s
        let before = reset_high_water();
        let buf = take_zeroed(BIG);
        assert!(
            live_bytes() >= before + (BIG * 4) as i64,
            "live bytes did not grow"
        );
        assert!(
            high_water_bytes() >= before + (BIG * 4) as i64,
            "high water missed the allocation"
        );
        recycle(buf);
        assert!(
            live_bytes() < before + (BIG * 4) as i64,
            "release was not debited"
        );
    }
}
