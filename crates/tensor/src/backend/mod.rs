//! Backend-abstracted compute kernels for the conv2d and matmul
//! families.
//!
//! Every heavy kernel call in the workspace ([`Tensor::matmul`],
//! [`Tensor::conv2d`], the conv gradients and the two fused kernels)
//! funnels through the [`Backend`] trait, so `nn`, `core` and
//! `baselines` pick a kernel implementation up without call-site
//! changes:
//!
//! * [`scalar`] — the reference backend. Its loops are byte-for-byte
//!   the pre-backend kernels, so every golden fixture, checkpoint
//!   kill/resume artifact and determinism sweep recorded against them
//!   stays bit-identical.
//! * [`simd`] — im2col + cache-blocked GEMM with
//!   autovectorizer-friendly microkernel inner loops (plain indexed
//!   slices the compiler lowers to packed `f32` lanes; `std::arch`
//!   intrinsics can be slotted into the same microkernels later).
//!   Results agree with [`scalar`] to floating-point reassociation
//!   tolerance (≤ 1e-5 relative; see `tests/backend_parity.rs`), and
//!   are *themselves* bit-identical at any thread count — the
//!   determinism contract is per backend, not cross backend.
//!
//! Selection mirrors the `SPECTRAGAN_THREADS` pattern of
//! [`crate::pool`], in priority order:
//!
//! 1. [`set_backend`] (programmatic override, used by parity tests and
//!    the perf gate to sweep backends in-process),
//! 2. the `SPECTRAGAN_BACKEND` environment variable (`scalar` or
//!    `simd`; unrecognized values are ignored),
//! 3. the default, [`BackendKind::Scalar`] — the bit-exact contracts
//!    hold unless a faster backend is asked for explicitly.
//!
//! Shape validation happens once, in the dispatching `Tensor`/op entry
//! points (see [`conv2d_check`] / [`conv2d_out_shape`]), so kernels may
//! assume well-formed shapes and both backends reject malformed calls
//! with identical messages — including the zero-size-kernel case that
//! previously surfaced as a misleading subtraction overflow.

pub mod scalar;
pub mod simd;

use crate::ops::FusedAct;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Which kernel implementation the dispatch layer routes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Bit-exact reference kernels (the default).
    Scalar,
    /// im2col + cache-blocked GEMM kernels, tolerance-equal to scalar.
    Simd,
}

impl BackendKind {
    /// Stable lowercase name used in logs, spans and bench tables.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Scalar => "scalar",
            BackendKind::Simd => "simd",
        }
    }

    /// Parses `SPECTRAGAN_BACKEND`-style names (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(BackendKind::Scalar),
            "simd" => Some(BackendKind::Simd),
            _ => None,
        }
    }
}

/// The kernel families a backend must provide. Implementations may
/// assume shapes were validated by the dispatching entry point.
///
/// The two fused methods have defaults composing the unfused kernel
/// with the shared bias/activation epilogues — exactly the composition
/// the scalar backend is contracted to (bit-equal to the historical
/// fused kernels); faster backends override them to fuse the epilogue
/// into the GEMM output pass.
pub trait Backend: Sync {
    /// Which [`BackendKind`] this is.
    fn kind(&self) -> BackendKind;

    /// `[m, k] @ [k, n] → [m, n]`.
    fn matmul(&self, a: &Tensor, b: &Tensor) -> Tensor;

    /// `a @ bᵀ` for `a: [m, k]`, `b: [n, k]` → `[m, n]`. The backward
    /// pass's right-operand gradient shape; the default composes the
    /// materialized transpose with [`Backend::matmul`] exactly as the
    /// historical interpreter did, so the scalar backend stays
    /// bit-identical. Faster backends read `b`'s rows directly.
    fn matmul_bt(&self, a: &Tensor, b: &Tensor) -> Tensor {
        self.matmul(a, &b.transpose2())
    }

    /// `aᵀ @ b` for `a: [m, k]`, `b: [m, n]` → `[k, n]`. The backward
    /// pass's left-operand gradient shape; same contract as
    /// [`Backend::matmul_bt`].
    fn matmul_tb(&self, a: &Tensor, b: &Tensor) -> Tensor {
        self.matmul(&a.transpose2(), b)
    }

    /// Fused `act(a @ w + bias)` with `bias: [n]` broadcast over rows.
    fn matmul_bias_act(&self, a: &Tensor, w: &Tensor, bias: &Tensor, act: FusedAct) -> Tensor {
        let mut y = self.matmul(a, w);
        add_row_bias_inplace(&mut y, bias);
        crate::ops::apply_act_inplace(&mut y, act);
        y
    }

    /// 2-D cross-correlation, stride 1, zero padding `pad`.
    fn conv2d(&self, input: &Tensor, weight: &Tensor, pad: usize) -> Tensor;

    /// Fused `conv2d(input, weight, pad) + bias` with `bias: [Cout]`
    /// broadcast over channels.
    fn conv2d_bias(&self, input: &Tensor, weight: &Tensor, bias: &Tensor, pad: usize) -> Tensor {
        let mut y = self.conv2d(input, weight, pad);
        add_channel_bias_inplace(&mut y, bias);
        y
    }

    /// Gradient of `conv2d` w.r.t. the input.
    fn conv2d_grad_input(
        &self,
        grad_out: &Tensor,
        weight: &Tensor,
        input_shape: &Shape,
        pad: usize,
    ) -> Tensor;

    /// Gradient of `conv2d` w.r.t. the weight.
    fn conv2d_grad_weight(
        &self,
        grad_out: &Tensor,
        input: &Tensor,
        weight_shape: &Shape,
        pad: usize,
    ) -> Tensor;

    /// Elementwise `tanh` in place. The default is the exact libm
    /// expression the historical interpreter used, so the scalar
    /// backend stays bit-identical; faster backends may substitute a
    /// vectorizable approximation within the parity-suite tolerance.
    /// The fused-activation epilogue routes through this too, so fused
    /// and unfused compositions stay bit-equal *per backend*.
    fn tanh_slice(&self, y: &mut [f32]) {
        for v in y {
            *v = v.tanh();
        }
    }

    /// Elementwise logistic sigmoid in place; same contract as
    /// [`Backend::tanh_slice`].
    fn sigmoid_slice(&self, y: &mut [f32]) {
        for v in y {
            *v = 1.0 / (1.0 + (-*v).exp());
        }
    }

    /// Widens a little-endian f16 byte stream (2 bytes per element)
    /// into `out`. This is the load path of the reduced-precision
    /// weight store: f16 is storage-only, every kernel still computes
    /// in f32, and the widening itself is **exact** (see
    /// [`crate::f16::f16_to_f32`]) so the only precision loss is the
    /// one-time export narrowing. Backends must produce bit-identical
    /// results; faster backends may only reorganize the loop.
    ///
    /// Takes bytes rather than `&[u16]` because mapped or buffered
    /// file sections carry no alignment guarantee.
    fn widen_f16_le(&self, bytes: &[u8], out: &mut [f32]) {
        assert_eq!(
            bytes.len(),
            2 * out.len(),
            "widen_f16_le: {} bytes cannot fill {} f32s",
            bytes.len(),
            out.len()
        );
        for (o, c) in out.iter_mut().zip(bytes.chunks_exact(2)) {
            *o = crate::f16::f16_to_f32(u16::from_le_bytes([c[0], c[1]]));
        }
    }

    /// Dequantizes a symmetric-int8 byte stream (1 byte per element,
    /// two's complement; see [`crate::q8`]) into `out`:
    /// `out[i] = q[i] · scales[i / row_len]` with
    /// `row_len = out.len() / scales.len()`. Like
    /// [`Backend::widen_f16_le`] this is the whole-tensor load path of
    /// the reduced-precision weight store, and the contract is the
    /// same: backends must produce **bit-identical** results — the
    /// dequantization expression is fixed, faster backends may only
    /// reorganize the loop.
    fn widen_i8_scaled(&self, bytes: &[u8], scales: &[f32], out: &mut [f32]) {
        let row_len = widen_i8_check(bytes, scales, out);
        if row_len == 0 {
            return;
        }
        for ((chunk, o_chunk), &s) in bytes
            .chunks_exact(row_len)
            .zip(out.chunks_exact_mut(row_len))
            .zip(scales)
        {
            for (&b, o) in chunk.iter().zip(o_chunk) {
                *o = (b as i8 as i32 as f32) * s;
            }
        }
    }

    /// Dequantizing GEMM: `a: [m, k] @ dequant(bq): [k, n] → [m, n]`,
    /// where `bq` is a symmetric-int8 section with one scale per
    /// b-row (`scales.len() == k`). The default is the **scalar
    /// reference**: it dequantizes each b element with the exact
    /// [`Backend::widen_i8_scaled`] expression inside the inner loop,
    /// in the exact accumulation order of [`Backend::matmul`], so it
    /// is bit-identical to `matmul(a, widened_b)` on the scalar
    /// backend. Faster backends may hoist the scale out of the inner
    /// loop (one multiply per row instead of per element), which
    /// reassociates within the cross-backend tolerance; per backend,
    /// results stay bit-identical at any thread count.
    fn matmul_q8(&self, a: &Tensor, bq: &[u8], scales: &[f32], n: usize) -> Tensor {
        let (m, k) = matmul_q8_check(a, bq, scales, n);
        let mut out = crate::arena::take_zeroed(m * n);
        for i in 0..m {
            let a_row = &a.data()[i * k..(i + 1) * k];
            let o_row = &mut out[i * n..(i + 1) * n];
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let s = scales[p];
                let b_row = &bq[p * n..(p + 1) * n];
                for (o, &bb) in o_row.iter_mut().zip(b_row) {
                    *o += av * ((bb as i8 as i32 as f32) * s);
                }
            }
        }
        Tensor::from_vec(out, [m, n])
    }
}

/// Shared validation for [`Backend::widen_i8_scaled`]: returns the row
/// length.
pub(crate) fn widen_i8_check(bytes: &[u8], scales: &[f32], out: &mut [f32]) -> usize {
    assert_eq!(
        bytes.len(),
        out.len(),
        "widen_i8_scaled: {} bytes cannot fill {} f32s",
        bytes.len(),
        out.len()
    );
    assert!(
        !scales.is_empty() && bytes.len().is_multiple_of(scales.len()),
        "widen_i8_scaled: {} elements do not split into {} scale rows",
        bytes.len(),
        scales.len()
    );
    bytes.len() / scales.len()
}

/// Shared validation for [`Backend::matmul_q8`]: returns `(m, k)`.
pub(crate) fn matmul_q8_check(a: &Tensor, bq: &[u8], scales: &[f32], n: usize) -> (usize, usize) {
    assert_eq!(a.shape().ndim(), 2, "matmul_q8 lhs must be rank 2");
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    assert_eq!(
        bq.len(),
        k * n,
        "matmul_q8: {} quantized bytes cannot be [{k}, {n}]",
        bq.len()
    );
    assert_eq!(
        scales.len(),
        k,
        "matmul_q8: {} scales for {k} b-rows",
        scales.len()
    );
    (m, k)
}

/// The `SPECTRAGAN_BACKEND` knob, sharing the override/env/default
/// resolution contract of [`crate::envctl`]. [`BackendKind`] maps to
/// the knob's non-zero `usize` codes via [`BackendKind::code`].
static BACKEND: crate::envctl::EnvCtl = crate::envctl::EnvCtl::new("SPECTRAGAN_BACKEND");

impl BackendKind {
    /// The non-zero [`crate::envctl`] code for this backend.
    fn code(self) -> usize {
        match self {
            BackendKind::Scalar => 1,
            BackendKind::Simd => 2,
        }
    }

    /// Inverse of [`BackendKind::code`].
    fn from_code(code: usize) -> BackendKind {
        match code {
            1 => BackendKind::Scalar,
            2 => BackendKind::Simd,
            _ => unreachable!("envctl only stores codes minted by BackendKind::code"),
        }
    }
}

/// Overrides the backend for subsequent kernel calls. `Some(kind)`
/// forces that backend; `None` restores the environment/default
/// resolution. Mirrors [`crate::pool::set_threads`].
pub fn set_backend(kind: Option<BackendKind>) {
    BACKEND.set(kind.map(BackendKind::code));
}

/// The backend kernel calls will use right now: the [`set_backend`]
/// override, else `SPECTRAGAN_BACKEND`, else [`BackendKind::Scalar`].
/// The environment/default resolution is cached on first use (see
/// [`crate::envctl`]) — this runs on every dispatched kernel call.
pub fn kind() -> BackendKind {
    BackendKind::from_code(BACKEND.get(
        |s| BackendKind::parse(s).map(BackendKind::code),
        || BackendKind::Scalar.code(),
    ))
}

/// The active backend as a trait object (statics, so dispatch is one
/// relaxed atomic load plus a vtable call).
pub fn active() -> &'static dyn Backend {
    static SCALAR: scalar::ScalarBackend = scalar::ScalarBackend;
    static SIMD: simd::SimdBackend = simd::SimdBackend;
    match kind() {
        BackendKind::Scalar => &SCALAR,
        BackendKind::Simd => &SIMD,
    }
}

/// The validated geometry of one conv2d-family call.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ConvDims {
    pub n: usize,
    pub cin: usize,
    pub h: usize,
    pub w: usize,
    pub cout: usize,
    pub kh: usize,
    pub kw: usize,
    pub oh: usize,
    pub ow: usize,
}

/// Unpacks a rank-4 shape, with a contextual panic message.
pub(crate) fn dims4(s: &Shape, what: &str) -> (usize, usize, usize, usize) {
    assert_eq!(s.ndim(), 4, "{what} must be rank 4, got {s}");
    (s.dim(0), s.dim(1), s.dim(2), s.dim(3))
}

/// Validates the kernel dims shared by every conv2d entry point:
/// zero-size kernels are a documented shape error, not an arithmetic
/// underflow inside the output-extent computation.
fn check_kernel_nonempty(kh: usize, kw: usize) {
    assert!(
        kh > 0 && kw > 0,
        "conv2d kernel must have positive extent, got {kh}x{kw}"
    );
}

/// Validates a forward conv2d call and returns its geometry.
///
/// # Panics
/// Panics on rank/channel mismatches, zero-size kernels, or kernels
/// larger than the padded input.
pub(crate) fn conv2d_out_shape(input: &Shape, weight: &Shape, pad: usize) -> ConvDims {
    let (n, cin, h, w) = dims4(input, "conv2d input");
    let (cout, cin_w, kh, kw) = dims4(weight, "conv2d weight");
    assert_eq!(cin, cin_w, "conv2d channels: input {cin} vs weight {cin_w}");
    check_kernel_nonempty(kh, kw);
    let oh = (h + 2 * pad)
        .checked_sub(kh - 1)
        .expect("kernel taller than padded input");
    let ow = (w + 2 * pad)
        .checked_sub(kw - 1)
        .expect("kernel wider than padded input");
    ConvDims {
        n,
        cin,
        h,
        w,
        cout,
        kh,
        kw,
        oh,
        ow,
    }
}

/// Validates a grad-input call and returns its geometry.
pub(crate) fn conv2d_grad_input_dims(
    grad_out: &Shape,
    weight: &Shape,
    input_shape: &Shape,
    _pad: usize,
) -> ConvDims {
    let (n, cout, oh, ow) = dims4(grad_out, "conv2d grad_out");
    let (cout_w, cin, kh, kw) = dims4(weight, "conv2d weight");
    assert_eq!(cout, cout_w, "conv2d grad channels mismatch");
    check_kernel_nonempty(kh, kw);
    assert_eq!(input_shape.dim(0), n, "conv2d grad batch mismatch");
    assert_eq!(input_shape.dim(1), cin, "conv2d grad channel mismatch");
    ConvDims {
        n,
        cin,
        h: input_shape.dim(2),
        w: input_shape.dim(3),
        cout,
        kh,
        kw,
        oh,
        ow,
    }
}

/// Validates a grad-weight call and returns its geometry.
pub(crate) fn conv2d_grad_weight_dims(
    grad_out: &Shape,
    input: &Shape,
    weight_shape: &Shape,
    _pad: usize,
) -> ConvDims {
    let (n, cout, oh, ow) = dims4(grad_out, "conv2d grad_out");
    let (n_i, cin, h, w) = dims4(input, "conv2d input");
    assert_eq!(n, n_i, "conv2d grad batch mismatch");
    assert_eq!(
        weight_shape.dim(0),
        cout,
        "conv2d grad out-channel mismatch"
    );
    assert_eq!(weight_shape.dim(1), cin, "conv2d grad in-channel mismatch");
    let kh = weight_shape.dim(2);
    let kw = weight_shape.dim(3);
    check_kernel_nonempty(kh, kw);
    ConvDims {
        n,
        cin,
        h,
        w,
        cout,
        kh,
        kw,
        oh,
        ow,
    }
}

/// Adds a `[m]` bias to every row of a `[n, m]` tensor, in the exact
/// loop order of the historical fused matmul epilogue.
pub(crate) fn add_row_bias_inplace(y: &mut Tensor, bias: &Tensor) {
    let (n, m) = (y.shape().dim(0), y.shape().dim(1));
    debug_assert_eq!(bias.numel(), m);
    for row in 0..n {
        for col in 0..m {
            y.data_mut()[row * m + col] += bias.data()[col];
        }
    }
}

/// Adds a `[c]` bias to every channel plane of a `[n, c, h, w]` tensor,
/// in the exact loop order of the historical fused conv epilogue.
pub(crate) fn add_channel_bias_inplace(y: &mut Tensor, bias: &Tensor) {
    let (n, c) = (y.shape().dim(0), y.shape().dim(1));
    debug_assert_eq!(bias.numel(), c);
    let hw = y.shape().dim(2) * y.shape().dim(3);
    for bi in 0..n {
        for ci in 0..c {
            let base = (bi * c + ci) * hw;
            let bv = bias.data()[ci];
            for v in &mut y.data_mut()[base..base + hw] {
                *v += bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the global override.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn override_beats_environment_and_default() {
        let _g = LOCK.lock().unwrap();
        set_backend(Some(BackendKind::Simd));
        assert_eq!(kind(), BackendKind::Simd);
        assert_eq!(active().kind(), BackendKind::Simd);
        set_backend(Some(BackendKind::Scalar));
        assert_eq!(kind(), BackendKind::Scalar);
        set_backend(None);
        // No env var in the test harness → scalar default.
        if std::env::var("SPECTRAGAN_BACKEND").is_err() {
            assert_eq!(kind(), BackendKind::Scalar);
        }
    }

    #[test]
    fn names_roundtrip_through_parse() {
        for k in [BackendKind::Scalar, BackendKind::Simd] {
            assert_eq!(BackendKind::parse(k.name()), Some(k));
        }
        assert_eq!(BackendKind::parse(" SIMD \n"), Some(BackendKind::Simd));
        assert_eq!(BackendKind::parse("avx1024"), None);
    }
}
