//! The bit-exact reference backend.
//!
//! These are the historical kernels of [`Tensor`], moved here verbatim:
//! the same tiling over [`crate::pool::par_chunks_mut`], the same
//! per-element summation order, the same arena buffers. Every golden
//! fixture, kill/resume artifact and determinism sweep recorded before
//! the backend split reproduces byte-identically against this backend.
//!
//! The one deliberate change: the conv gradient kernels no longer skip
//! contributions whose upstream gradient is exactly `±0.0`. The skip
//! was a throughput hack that silently masked non-finite values —
//! `0 · inf = NaN` was dropped instead of propagated, so a blown-up
//! activation whose gradient happened to zero out could slip past the
//! train-loop divergence guard. Accumulating unconditionally is
//! bit-identical for finite data (adding `±0.0` to an accumulator that
//! is never `-0.0` cannot flip a bit) and surfaces NaN where it
//! belongs; the golden fixtures confirm the first claim, and
//! `non_finite_gradients_propagate` in the tensor tests the second.

use super::{
    conv2d_grad_input_dims, conv2d_grad_weight_dims, conv2d_out_shape, Backend, BackendKind,
};
use crate::arena;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Reference scalar kernels (see module docs).
pub struct ScalarBackend;

impl Backend for ScalarBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Scalar
    }

    fn matmul(&self, a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape().dim(0), a.shape().dim(1));
        let n = b.shape().dim(1);
        let mut out = arena::take_zeroed(m * n);
        for i in 0..m {
            let a_row = &a.data()[i * k..(i + 1) * k];
            let o_row = &mut out[i * n..(i + 1) * n];
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = &b.data()[p * n..(p + 1) * n];
                for (o, &bv) in o_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
        Tensor::from_vec(out, [m, n])
    }

    fn conv2d(&self, input: &Tensor, weight: &Tensor, pad: usize) -> Tensor {
        let d = conv2d_out_shape(input.shape(), weight.shape(), pad);
        let (cin, h, w) = (d.cin, d.h, d.w);
        let (cout, kh, kw) = (d.cout, d.kh, d.kw);
        let (oh, ow) = (d.oh, d.ow);
        let mut out = Tensor::zeros([d.n, cout, oh, ow]);
        if out.numel() == 0 {
            return out;
        }
        crate::pool::par_chunks_mut(out.data_mut(), oh * ow, |tile, plane| {
            let b = tile / cout;
            let oc = tile % cout;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ic in 0..cin {
                        for ky in 0..kh {
                            let iy = oy + ky;
                            if iy < pad || iy - pad >= h {
                                continue;
                            }
                            let iy = iy - pad;
                            let in_base = ((b * cin + ic) * h + iy) * w;
                            let w_base = ((oc * cin + ic) * kh + ky) * kw;
                            for kx in 0..kw {
                                let ix = ox + kx;
                                if ix < pad || ix - pad >= w {
                                    continue;
                                }
                                acc +=
                                    input.data()[in_base + (ix - pad)] * weight.data()[w_base + kx];
                            }
                        }
                    }
                    plane[oy * ow + ox] = acc;
                }
            }
        });
        out
    }

    fn conv2d_grad_input(
        &self,
        grad_out: &Tensor,
        weight: &Tensor,
        input_shape: &Shape,
        pad: usize,
    ) -> Tensor {
        let d = conv2d_grad_input_dims(grad_out.shape(), weight.shape(), input_shape, pad);
        let (cin, h, w) = (d.cin, d.h, d.w);
        let (cout, kh, kw) = (d.cout, d.kh, d.kw);
        let (oh, ow) = (d.oh, d.ow);
        let mut grad_in = Tensor::zeros(input_shape.clone());
        if grad_in.numel() == 0 {
            return grad_in;
        }
        crate::pool::par_chunks_mut(grad_in.data_mut(), h * w, |tile, plane| {
            let b = tile / cin;
            let ic = tile % cin;
            for oc in 0..cout {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = grad_out.data()[((b * cout + oc) * oh + oy) * ow + ox];
                        for ky in 0..kh {
                            let iy = oy + ky;
                            if iy < pad || iy - pad >= h {
                                continue;
                            }
                            let row = (iy - pad) * w;
                            let w_base = ((oc * cin + ic) * kh + ky) * kw;
                            for kx in 0..kw {
                                let ix = ox + kx;
                                if ix < pad || ix - pad >= w {
                                    continue;
                                }
                                plane[row + (ix - pad)] += g * weight.data()[w_base + kx];
                            }
                        }
                    }
                }
            }
        });
        grad_in
    }

    fn conv2d_grad_weight(
        &self,
        grad_out: &Tensor,
        input: &Tensor,
        weight_shape: &Shape,
        pad: usize,
    ) -> Tensor {
        let d = conv2d_grad_weight_dims(grad_out.shape(), input.shape(), weight_shape, pad);
        let (n, cin, h, w) = (d.n, d.cin, d.h, d.w);
        let (cout, kh, kw) = (d.cout, d.kh, d.kw);
        let (oh, ow) = (d.oh, d.ow);
        let mut grad_w = Tensor::zeros(weight_shape.clone());
        if grad_w.numel() == 0 {
            return grad_w;
        }
        crate::pool::par_chunks_mut(grad_w.data_mut(), cin * kh * kw, |oc, kernel| {
            for b in 0..n {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = grad_out.data()[((b * cout + oc) * oh + oy) * ow + ox];
                        for ic in 0..cin {
                            for ky in 0..kh {
                                let iy = oy + ky;
                                if iy < pad || iy - pad >= h {
                                    continue;
                                }
                                let iy = iy - pad;
                                let in_base = ((b * cin + ic) * h + iy) * w;
                                let k_base = (ic * kh + ky) * kw;
                                for kx in 0..kw {
                                    let ix = ox + kx;
                                    if ix < pad || ix - pad >= w {
                                        continue;
                                    }
                                    kernel[k_base + kx] += g * input.data()[in_base + (ix - pad)];
                                }
                            }
                        }
                    }
                }
            }
        });
        grad_w
    }
}
