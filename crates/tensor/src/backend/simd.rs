//! The im2col + cache-blocked GEMM backend.
//!
//! Every conv2d-family kernel is lowered onto one of two microkernels
//! whose inner loops are plain indexed slice arithmetic the
//! autovectorizer turns into packed `f32` lanes (and into which
//! `std::arch` intrinsics can later be slotted without changing the
//! surrounding blocking):
//!
//! * [`gemm_row`] — an axpy-style `C[j] += Σ_k A[k]·B[k][j]` pass,
//!   k-blocked by 4 so each output element gets four fused
//!   multiply-adds per iteration of the vectorized `j` loop;
//! * [`dot`] — a 4-accumulator dot product (one accumulator per SSE
//!   lane) used by the weight gradient.
//!
//! Layout: a batch image is unrolled by [`im2col`] into a
//! `[Cin·KH·KW, OH·OW]` column matrix (patches are columns, so the GEMM
//! writes each output plane contiguously); the forward pass is then
//! `weight[Cout, K] @ col[K, N]`, the input gradient is
//! `weightᵀ[K, Cout] @ g[Cout, N]` folded back with [`col2im_plane`],
//! and the weight gradient is `g[Cout, N] @ colᵀ[N, K]` computed as
//! row-times-row dots.
//!
//! **Determinism.** Results differ from the scalar backend only by
//! float reassociation (≤ 1e-5 relative — see `tests/backend_parity.rs`)
//! but are bit-identical *per backend* at any thread count: every
//! parallel region is a [`crate::pool::par_chunks_mut`] over disjoint
//! output rows/planes, and the per-element accumulation order inside a
//! row is a pure function of the shapes.
//!
//! **Allocation.** All scratch (the column matrix, the transposed
//! weight, the gradient columns) is taken from and recycled to the
//! *calling thread's* arena — never inside a worker closure, whose
//! thread-local arena would die with the scoped pool — so steady-state
//! training stays at zero fresh allocations on this backend too.

use super::{
    conv2d_grad_input_dims, conv2d_grad_weight_dims, conv2d_out_shape, Backend, BackendKind,
    ConvDims,
};
use crate::arena;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// im2col + blocked-GEMM kernels (see module docs).
pub struct SimdBackend;

/// Largest rhs (in elements, 64 KiB of f32) for which the
/// transpose-free `matmul_bt` / `matmul_tb` paths run. Below this the
/// whole rhs stays cache-resident across the repeated passes those
/// paths make and skipping the transpose round-trip wins; above it
/// they fall back to one materialized transpose plus the vectorized
/// gemm microkernel.
const TRANSPOSE_FREE_MAX_ELEMS: usize = 16 * 1024;

/// `c_row[j] += Σ_k a_row[k] · b[k·n + j]`, k-blocked by 4.
///
/// `b` holds rows of length `n` back to back; `c_row.len() == n`. The
/// four row slices and the output row all have length exactly `n`, so
/// the inner `j` loops bounds-check once and vectorize.
fn gemm_row(a_row: &[f32], b: &[f32], n: usize, c_row: &mut [f32]) {
    debug_assert_eq!(c_row.len(), n);
    let k = a_row.len();
    debug_assert_eq!(b.len(), k * n);
    let mut kk = 0;
    while kk + 4 <= k {
        let a0 = a_row[kk];
        let a1 = a_row[kk + 1];
        let a2 = a_row[kk + 2];
        let a3 = a_row[kk + 3];
        // Skip all-zero k-blocks: one-hot conditioning rows make these
        // common in the matmul inputs this path carries, and the skip
        // matches the scalar matmul's historical `a == 0.0` shortcut.
        // Gradient kernels must NOT route through here — use
        // [`gemm_row_dense`] so `0 · inf = NaN` propagates.
        if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
            kk += 4;
            continue;
        }
        let b0 = &b[kk * n..kk * n + n];
        let b1 = &b[(kk + 1) * n..(kk + 1) * n + n];
        let b2 = &b[(kk + 2) * n..(kk + 2) * n + n];
        let b3 = &b[(kk + 3) * n..(kk + 3) * n + n];
        // Zipped iterators so the loop carries no bounds checks and
        // lowers to packed fused multiply-adds.
        for ((((c, &v0), &v1), &v2), &v3) in c_row.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
            *c += a0 * v0 + a1 * v1 + a2 * v2 + a3 * v3;
        }
        kk += 4;
    }
    while kk < k {
        let a0 = a_row[kk];
        if a0 != 0.0 {
            let b0 = &b[kk * n..kk * n + n];
            for (c, &v0) in c_row.iter_mut().zip(b0) {
                *c += a0 * v0;
            }
        }
        kk += 1;
    }
}

/// [`gemm_row`] without the zero-block skips: every contribution is
/// accumulated, so `0 · inf = NaN` propagates. The conv family uses
/// this for both forward and gradient passes — value-dependent skips
/// in gradient kernels are exactly the masking bug this backend split
/// fixed, and the forward pass follows the scalar reference, which
/// never skips either.
fn gemm_row_dense(a_row: &[f32], b: &[f32], n: usize, c_row: &mut [f32]) {
    debug_assert_eq!(c_row.len(), n);
    let k = a_row.len();
    debug_assert_eq!(b.len(), k * n);
    let mut kk = 0;
    while kk + 4 <= k {
        let a0 = a_row[kk];
        let a1 = a_row[kk + 1];
        let a2 = a_row[kk + 2];
        let a3 = a_row[kk + 3];
        let b0 = &b[kk * n..kk * n + n];
        let b1 = &b[(kk + 1) * n..(kk + 1) * n + n];
        let b2 = &b[(kk + 2) * n..(kk + 2) * n + n];
        let b3 = &b[(kk + 3) * n..(kk + 3) * n + n];
        for ((((c, &v0), &v1), &v2), &v3) in c_row.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
            *c += a0 * v0 + a1 * v1 + a2 * v2 + a3 * v3;
        }
        kk += 4;
    }
    while kk < k {
        let a0 = a_row[kk];
        let b0 = &b[kk * n..kk * n + n];
        for (c, &v0) in c_row.iter_mut().zip(b0) {
            *c += a0 * v0;
        }
        kk += 1;
    }
}

/// 4-accumulator dot product (one accumulator per packed lane).
fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ra, rb) = (ca.remainder(), cb.remainder());
    for (x, y) in ca.zip(cb) {
        acc[0] += x[0] * y[0];
        acc[1] += x[1] * y[1];
        acc[2] += x[2] * y[2];
        acc[3] += x[3] * y[3];
    }
    let mut s = (acc[0] + acc[2]) + (acc[1] + acc[3]);
    for (x, y) in ra.iter().zip(rb) {
        s += x * y;
    }
    s
}

/// Unrolls one batch image `img: [Cin, H, W]` into
/// `col: [Cin·KH·KW, OH·OW]`: row `(ic·KH + ky)·KW + kx`, column
/// `oy·OW + ox` holds `img[ic, oy+ky−pad, ox+kx−pad]` (0 outside the
/// image). Out-of-image cells are written explicitly so a recycled
/// buffer needs no pre-zeroing.
fn im2col(img: &[f32], d: &ConvDims, pad: usize, col: &mut [f32]) {
    let (h, w, oh, ow) = (d.h, d.w, d.oh, d.ow);
    let np = oh * ow;
    let mut r = 0usize;
    for ic in 0..d.cin {
        let plane = &img[ic * h * w..(ic + 1) * h * w];
        for ky in 0..d.kh {
            for kx in 0..d.kw {
                let dst_row = &mut col[r * np..(r + 1) * np];
                // Valid ox range: pad ≤ ox + kx < w + pad.
                let lo = pad.saturating_sub(kx);
                let hi = (w + pad).saturating_sub(kx).min(ow);
                for oy in 0..oh {
                    let dst = &mut dst_row[oy * ow..(oy + 1) * ow];
                    let iy = oy + ky;
                    if iy < pad || iy - pad >= h || lo >= hi {
                        dst.fill(0.0);
                        continue;
                    }
                    let src_base = (iy - pad) * w + (lo + kx - pad);
                    dst[..lo].fill(0.0);
                    dst[lo..hi].copy_from_slice(&plane[src_base..src_base + (hi - lo)]);
                    dst[hi..].fill(0.0);
                }
                r += 1;
            }
        }
    }
}

/// Folds gradient columns for one input channel back into its `[H, W]`
/// plane: the inverse scatter of [`im2col`], accumulating overlaps in
/// the fixed `ky → kx → oy → ox` order.
fn col2im_plane(gcol: &[f32], d: &ConvDims, pad: usize, plane: &mut [f32]) {
    let (h, w, oh, ow) = (d.h, d.w, d.oh, d.ow);
    let np = oh * ow;
    let mut r = 0usize;
    for ky in 0..d.kh {
        for kx in 0..d.kw {
            let src_row = &gcol[r * np..(r + 1) * np];
            let lo = pad.saturating_sub(kx);
            let hi = (w + pad).saturating_sub(kx).min(ow);
            for oy in 0..oh {
                let iy = oy + ky;
                if iy < pad || iy - pad >= h || lo >= hi {
                    continue;
                }
                let src = &src_row[oy * ow + lo..oy * ow + hi];
                let dst_base = (iy - pad) * w + (lo + kx - pad);
                let dst = &mut plane[dst_base..dst_base + (hi - lo)];
                for (dv, sv) in dst.iter_mut().zip(src) {
                    *dv += sv;
                }
            }
            r += 1;
        }
    }
}

impl Backend for SimdBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Simd
    }

    // `matmul_bias_act` and `conv2d_bias` stay on the trait defaults:
    // the bias/activation epilogues are O(N) next to the O(K·N) GEMM,
    // and composing them outside the kernel keeps fused-vs-unfused
    // bitwise equality per backend (the tape tests assert it).

    fn matmul(&self, a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape().dim(0), a.shape().dim(1));
        let n = b.shape().dim(1);
        let mut out = Tensor::zeros([m, n]);
        if out.numel() == 0 || k == 0 {
            return out;
        }
        crate::pool::par_chunks_mut(out.data_mut(), n, |i, c_row| {
            gemm_row(&a.data()[i * k..(i + 1) * k], b.data(), n, c_row);
        });
        out
    }

    fn matmul_bt(&self, a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape().dim(0), a.shape().dim(1));
        let n = b.shape().dim(0);
        // Large rhs: materialize bᵀ once and go through the gemm
        // microkernel — its axpy inner loop vectorizes, while a dot
        // product's loop-carried accumulator cannot, so the dot path
        // below only wins while `b` is small enough that skipping the
        // transpose round-trip matters more than vector width.
        if b.numel() > TRANSPOSE_FREE_MAX_ELEMS {
            return self.matmul(a, &b.transpose2());
        }
        let mut out = Tensor::zeros([m, n]);
        if out.numel() == 0 || k == 0 {
            return out;
        }
        // out[i, j] = ⟨a_row_i, b_row_j⟩ — both rows contiguous, so no
        // transpose needs materializing.
        crate::pool::par_chunks_mut(out.data_mut(), n, |i, c_row| {
            let a_row = &a.data()[i * k..(i + 1) * k];
            for (j, c) in c_row.iter_mut().enumerate() {
                *c = dot(a_row, &b.data()[j * k..(j + 1) * k]);
            }
        });
        out
    }

    fn matmul_tb(&self, a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape().dim(0), a.shape().dim(1));
        let n = b.shape().dim(1);
        // Large rhs: the gather path below re-streams all of `b` once
        // per output row (k passes), which falls off a cliff as soon
        // as `b` outgrows cache — transpose `a` and gemm instead.
        if b.numel() > TRANSPOSE_FREE_MAX_ELEMS {
            return self.matmul(&a.transpose2(), b);
        }
        let mut out = Tensor::zeros([k, n]);
        if out.numel() == 0 || m == 0 {
            return out;
        }
        // out[p, :] = Σ_i a[i, p] · b[i, :] — an axpy over b's rows
        // with the a-column gathered at stride k.
        crate::pool::par_chunks_mut(out.data_mut(), n, |p, c_row| {
            for i in 0..m {
                let av = a.data()[i * k + p];
                if av == 0.0 {
                    continue;
                }
                let b_row = &b.data()[i * n..(i + 1) * n];
                for (c, &bv) in c_row.iter_mut().zip(b_row) {
                    *c += av * bv;
                }
            }
        });
        out
    }

    fn conv2d(&self, input: &Tensor, weight: &Tensor, pad: usize) -> Tensor {
        let d = conv2d_out_shape(input.shape(), weight.shape(), pad);
        let kdim = d.cin * d.kh * d.kw;
        let np = d.oh * d.ow;
        let mut out = Tensor::zeros([d.n, d.cout, d.oh, d.ow]);
        if out.numel() == 0 || kdim == 0 {
            return out;
        }
        let mut col = arena::take_zeroed(kdim * np);
        let img_len = d.cin * d.h * d.w;
        for b in 0..d.n {
            im2col(
                &input.data()[b * img_len..(b + 1) * img_len],
                &d,
                pad,
                &mut col,
            );
            let out_b = &mut out.data_mut()[b * d.cout * np..(b + 1) * d.cout * np];
            crate::pool::par_chunks_mut(out_b, np, |oc, c_row| {
                gemm_row_dense(&weight.data()[oc * kdim..(oc + 1) * kdim], &col, np, c_row);
            });
        }
        arena::recycle(col);
        out
    }

    fn conv2d_grad_input(
        &self,
        grad_out: &Tensor,
        weight: &Tensor,
        input_shape: &Shape,
        pad: usize,
    ) -> Tensor {
        let d = conv2d_grad_input_dims(grad_out.shape(), weight.shape(), input_shape, pad);
        let kdim = d.cin * d.kh * d.kw;
        let np = d.oh * d.ow;
        let mut grad_in = Tensor::zeros(input_shape.clone());
        if grad_in.numel() == 0 {
            return grad_in;
        }
        if np == 0 || d.cout == 0 || kdim == 0 {
            return grad_in;
        }
        // Transposed weight: row k of wt is weight[:, k] (length Cout).
        let mut wt = arena::take_zeroed(kdim * d.cout);
        for oc in 0..d.cout {
            let w_row = &weight.data()[oc * kdim..(oc + 1) * kdim];
            for (kidx, &wv) in w_row.iter().enumerate() {
                wt[kidx * d.cout + oc] = wv;
            }
        }
        let mut gcol = arena::take_zeroed(kdim * np);
        let img_len = d.cin * d.h * d.w;
        let khw = d.kh * d.kw;
        for b in 0..d.n {
            let g_b = &grad_out.data()[b * d.cout * np..(b + 1) * d.cout * np];
            crate::pool::par_chunks_mut(&mut gcol, np, |kidx, row| {
                row.fill(0.0);
                gemm_row_dense(&wt[kidx * d.cout..(kidx + 1) * d.cout], g_b, np, row);
            });
            let gin_b = &mut grad_in.data_mut()[b * img_len..(b + 1) * img_len];
            crate::pool::par_chunks_mut(gin_b, d.h * d.w, |ic, plane| {
                col2im_plane(&gcol[ic * khw * np..(ic + 1) * khw * np], &d, pad, plane);
            });
        }
        arena::recycle(gcol);
        arena::recycle(wt);
        grad_in
    }

    fn conv2d_grad_weight(
        &self,
        grad_out: &Tensor,
        input: &Tensor,
        weight_shape: &Shape,
        pad: usize,
    ) -> Tensor {
        let d = conv2d_grad_weight_dims(grad_out.shape(), input.shape(), weight_shape, pad);
        let kdim = d.cin * d.kh * d.kw;
        let np = d.oh * d.ow;
        let mut grad_w = Tensor::zeros(weight_shape.clone());
        if grad_w.numel() == 0 {
            return grad_w;
        }
        if np == 0 || d.n == 0 {
            return grad_w;
        }
        let mut col = arena::take_zeroed(kdim * np);
        let mut colt = arena::take_zeroed(np * kdim);
        let img_len = d.cin * d.h * d.w;
        for b in 0..d.n {
            im2col(
                &input.data()[b * img_len..(b + 1) * img_len],
                &d,
                pad,
                &mut col,
            );
            // Transpose to [OH·OW, Cin·KH·KW] so the accumulation below
            // runs as an axpy over contiguous rows — a dot over `col`'s
            // rows would serialize on its accumulator instead of
            // vectorizing.
            crate::pool::par_chunks_mut(&mut colt, kdim, |p, t_row| {
                for (kidx, t) in t_row.iter_mut().enumerate() {
                    *t = col[kidx * np + p];
                }
            });
            let g_b = &grad_out.data()[b * d.cout * np..(b + 1) * d.cout * np];
            crate::pool::par_chunks_mut(grad_w.data_mut(), kdim, |oc, w_row| {
                // grad_w[oc, :] += Σ_p g[oc, p] · colᵀ[p, :]. No skip on
                // zero g: 0 · inf must surface as NaN, not vanish.
                let g_row = &g_b[oc * np..(oc + 1) * np];
                for (p, &gv) in g_row.iter().enumerate() {
                    let t_row = &colt[p * kdim..(p + 1) * kdim];
                    for (w, &cv) in w_row.iter_mut().zip(t_row) {
                        *w += gv * cv;
                    }
                }
            });
        }
        arena::recycle(colt);
        arena::recycle(col);
        grad_w
    }

    fn tanh_slice(&self, y: &mut [f32]) {
        for v in y {
            *v = tanh_approx(*v);
        }
    }

    fn sigmoid_slice(&self, y: &mut [f32]) {
        // σ(x) = ½·(1 + tanh(x/2)); `tanh_approx` is clamped into
        // [-1, 1], so the result stays inside [0, 1].
        for v in y {
            *v = 0.5 + 0.5 * tanh_approx(0.5 * *v);
        }
    }

    fn widen_i8_scaled(&self, bytes: &[u8], scales: &[f32], out: &mut [f32]) {
        let row_len = super::widen_i8_check(bytes, scales, out);
        if row_len == 0 {
            return;
        }
        // Same exact `q · s` expression as the default, row at a time
        // with a hoisted scale; the per-element conversion and multiply
        // are unchanged, so results are bit-identical to scalar (the
        // parity contract for dequantizing widens is exactness). The
        // plain indexed loop over a fixed-scale row is exactly the
        // shape the autovectorizer lowers to packed sign-extends +
        // converts + multiplies.
        for ((chunk, o_chunk), &s) in bytes
            .chunks_exact(row_len)
            .zip(out.chunks_exact_mut(row_len))
            .zip(scales)
        {
            for (&b, o) in chunk.iter().zip(o_chunk) {
                *o = (b as i8 as i32 as f32) * s;
            }
        }
    }

    fn matmul_q8(&self, a: &Tensor, bq: &[u8], scales: &[f32], n: usize) -> Tensor {
        let (m, k) = super::matmul_q8_check(a, bq, scales, n);
        let mut out = Tensor::zeros([m, n]);
        if out.numel() == 0 || k == 0 {
            return out;
        }
        // One scale multiply per (a-element, b-row) pair: the hoisted
        // `coef = av · s_p` replaces the per-element `av · (q · s_p)`
        // of the scalar reference — a reassociation within the
        // cross-backend tolerance. The inner loop widens i8→i32→f32
        // and multiply-accumulates, reading the weight stream at 1
        // byte per element instead of 4. Zero a-elements are skipped
        // like `gemm_row` (this path only carries inference inputs,
        // never gradients).
        crate::pool::par_chunks_mut(out.data_mut(), n, |i, c_row| {
            let a_row = &a.data()[i * k..(i + 1) * k];
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let coef = av * scales[p];
                let b_row = &bq[p * n..(p + 1) * n];
                for (c, &qb) in c_row.iter_mut().zip(b_row) {
                    *c += coef * (qb as i8 as i32 as f32);
                }
            }
        });
        out
    }

    fn widen_f16_le(&self, bytes: &[u8], out: &mut [f32]) {
        assert_eq!(
            bytes.len(),
            2 * out.len(),
            "widen_f16_le: {} bytes cannot fill {} f32s",
            bytes.len(),
            out.len()
        );
        // Same exact conversion as the default, blocked by 8 so the
        // fixed-trip inner loops unroll and the loads coalesce; the
        // conversion itself is bit-identical to scalar (it must be —
        // the parity contract for f16 widening is exactness, not
        // tolerance).
        let mut chunks = bytes.chunks_exact(16);
        let mut outs = out.chunks_exact_mut(8);
        for (c, o) in (&mut chunks).zip(&mut outs) {
            for i in 0..8 {
                o[i] = crate::f16::f16_to_f32(u16::from_le_bytes([c[2 * i], c[2 * i + 1]]));
            }
        }
        for (o, c) in outs
            .into_remainder()
            .iter_mut()
            .zip(chunks.remainder().chunks_exact(2))
        {
            *o = crate::f16::f16_to_f32(u16::from_le_bytes([c[0], c[1]]));
        }
    }
}

/// Branchless rational approximation of `tanh` (the classic
/// odd-13 / even-6 polynomial pair), accurate to a few ulps over the
/// clamped range and saturating outside it. Every step is a mul, add,
/// min or max, so the calling loops lower to packed instructions —
/// `f32::tanh` is a libm call that blocks vectorization entirely.
fn tanh_approx(x: f32) -> f32 {
    const CLAMP: f32 = 7.998_811_7;
    const A1: f32 = 4.893_525_3e-3;
    const A3: f32 = 6.372_619_3e-4;
    const A5: f32 = 1.485_722_4e-5;
    const A7: f32 = 5.122_297_1e-8;
    const A9: f32 = -8.604_672e-11;
    const A11: f32 = 2.000_188e-13;
    const A13: f32 = -2.760_768_5e-16;
    const B0: f32 = 4.893_525e-3;
    const B2: f32 = 2.268_434_6e-3;
    const B4: f32 = 1.185_347_1e-4;
    const B6: f32 = 1.198_258_4e-6;
    let x = x.clamp(-CLAMP, CLAMP);
    let x2 = x * x;
    let p = (((((A13 * x2 + A11) * x2 + A9) * x2 + A7) * x2 + A5) * x2 + A3) * x2 + A1;
    let p = p * x;
    let q = ((B6 * x2 + B4) * x2 + B2) * x2 + B0;
    (p / q).clamp(-1.0, 1.0)
}
