//! Shared environment-variable control knobs.
//!
//! Three process-wide tuning knobs follow the same resolution contract:
//! `SPECTRAGAN_THREADS` ([`crate::pool::threads`]), `SPECTRAGAN_BACKEND`
//! ([`crate::backend::kind`]) and `SPECTRAGAN_SHARDS` ([`shards`]). Each
//! used to hand-roll the identical atomic-override + cached-env-parse
//! dance; this module is the single implementation all three route
//! through.
//!
//! The contract, in priority order:
//!
//! 1. **Programmatic override** ([`EnvCtl::set`]) — installed by tests,
//!    benchmarks and the CLI; takes effect immediately and can be
//!    cleared with `set(None)`.
//! 2. **Environment variable** — parsed once on first query and cached
//!    for the life of the process (`std::env::var` takes the process
//!    environment lock and allocates, far too expensive for hot-path
//!    queries; and a knob that silently changed mid-run would break the
//!    determinism contracts anyway).
//! 3. **Default** — supplied by the caller.
//!
//! Values are stored as non-zero `usize` codes (0 is reserved for
//! "unset"); enum-valued knobs like the backend map through a code
//! table at the call site.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// One environment-backed control knob. See the module docs for the
/// resolution contract.
pub struct EnvCtl {
    /// Environment variable consulted when no override is installed.
    var: &'static str,
    /// Programmatic override; 0 means "not set".
    override_code: AtomicUsize,
    /// Cached environment/default resolution (first [`EnvCtl::get`]).
    cached: OnceLock<usize>,
}

impl EnvCtl {
    /// A knob backed by the environment variable `var`.
    pub const fn new(var: &'static str) -> Self {
        EnvCtl {
            var,
            override_code: AtomicUsize::new(0),
            cached: OnceLock::new(),
        }
    }

    /// The environment variable this knob consults.
    pub fn var(&self) -> &'static str {
        self.var
    }

    /// Installs (`Some(code)`, which must be non-zero) or clears
    /// (`None`) the programmatic override.
    ///
    /// # Panics
    /// Panics if `code` is zero — 0 is the "unset" sentinel.
    pub fn set(&self, code: Option<usize>) {
        let v = match code {
            Some(c) => {
                assert!(
                    c != 0,
                    "{}: override code 0 is reserved for unset",
                    self.var
                );
                c
            }
            None => 0,
        };
        self.override_code.store(v, Ordering::Relaxed);
    }

    /// Resolves the knob: override if installed, else the cached
    /// environment parse, else `default`. `parse` returning `None`
    /// (unset, malformed or out-of-range variable) falls through to
    /// `default`; the env/default resolution is computed once and
    /// cached.
    pub fn get(&self, parse: fn(&str) -> Option<usize>, default: fn() -> usize) -> usize {
        let forced = self.override_code.load(Ordering::Relaxed);
        if forced != 0 {
            return forced;
        }
        *self.cached.get_or_init(|| {
            std::env::var(self.var)
                .ok()
                .and_then(|v| parse(&v))
                .unwrap_or_else(default)
        })
    }
}

/// Parses a positive count (`n >= 1`), the shape shared by
/// `SPECTRAGAN_THREADS` and `SPECTRAGAN_SHARDS`. Zero, negative or
/// malformed values are rejected (→ fall through to the default).
pub fn parse_count(s: &str) -> Option<usize> {
    s.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// `SPECTRAGAN_SHARDS` — how many worker shards `spectragan train`
/// uses when the `--shards` flag is absent.
static SHARDS: EnvCtl = EnvCtl::new("SPECTRAGAN_SHARDS");

/// Overrides the shard count for subsequent queries. `Some(n)` forces
/// `n` shards (`n >= 1`); `None` restores the environment/default
/// resolution. Mirrors [`crate::pool::set_threads`].
pub fn set_shards(n: Option<usize>) {
    if let Some(n) = n {
        assert!(n >= 1, "shard count must be at least 1");
    }
    SHARDS.set(n);
}

/// The shard count sharded training will use right now: the
/// [`set_shards`] override, else `SPECTRAGAN_SHARDS`, else 1
/// (single-process training).
pub fn shards() -> usize {
    SHARDS.get(parse_count, || 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the tests that touch process-global knobs.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn override_beats_environment_and_default() {
        let _g = LOCK.lock().unwrap();
        static K: EnvCtl = EnvCtl::new("SPECTRAGAN_ENVCTL_TEST_A");
        // No env var → default.
        assert_eq!(K.get(parse_count, || 7), 7);
        K.set(Some(3));
        assert_eq!(K.get(parse_count, || 7), 3);
        K.set(None);
        assert_eq!(K.get(parse_count, || 7), 7);
    }

    #[test]
    fn environment_is_parsed_once_and_cached() {
        let _g = LOCK.lock().unwrap();
        static K: EnvCtl = EnvCtl::new("SPECTRAGAN_ENVCTL_TEST_B");
        std::env::set_var("SPECTRAGAN_ENVCTL_TEST_B", "5");
        assert_eq!(K.get(parse_count, || 1), 5);
        // Later environment changes are deliberately invisible: the
        // first resolution is cached for the life of the process.
        std::env::set_var("SPECTRAGAN_ENVCTL_TEST_B", "9");
        assert_eq!(K.get(parse_count, || 1), 5);
        std::env::remove_var("SPECTRAGAN_ENVCTL_TEST_B");
    }

    #[test]
    fn malformed_environment_falls_through_to_default() {
        let _g = LOCK.lock().unwrap();
        static K: EnvCtl = EnvCtl::new("SPECTRAGAN_ENVCTL_TEST_C");
        std::env::set_var("SPECTRAGAN_ENVCTL_TEST_C", "zero");
        assert_eq!(K.get(parse_count, || 4), 4);
        std::env::remove_var("SPECTRAGAN_ENVCTL_TEST_C");
    }

    #[test]
    #[should_panic(expected = "reserved for unset")]
    fn zero_override_code_is_rejected() {
        static K: EnvCtl = EnvCtl::new("SPECTRAGAN_ENVCTL_TEST_D");
        K.set(Some(0));
    }

    #[test]
    fn parse_count_accepts_positive_rejects_rest() {
        assert_eq!(parse_count("4"), Some(4));
        assert_eq!(parse_count("  2 \n"), Some(2));
        assert_eq!(parse_count("0"), None);
        assert_eq!(parse_count("-1"), None);
        assert_eq!(parse_count("many"), None);
    }

    #[test]
    fn shards_defaults_to_one_and_obeys_override() {
        let _g = LOCK.lock().unwrap();
        if std::env::var("SPECTRAGAN_SHARDS").is_err() {
            assert_eq!(shards(), 1);
        }
        set_shards(Some(4));
        assert_eq!(shards(), 4);
        set_shards(None);
    }

    #[test]
    #[should_panic(expected = "shard count must be at least 1")]
    fn zero_shards_rejected() {
        set_shards(Some(0));
    }
}
