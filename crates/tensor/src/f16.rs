//! IEEE 754 binary16 ("half") conversions for the reduced-precision
//! weight path.
//!
//! The workspace computes in f32 everywhere; f16 exists only as a
//! *storage* format for exported weight containers (see
//! `spectragan-core`'s weight store). Two conversions cover that:
//!
//! * [`f16_to_f32`] — **exact**. Every one of the 65536 half bit
//!   patterns (normals, subnormals, ±0, ±∞, NaNs) maps to the f32 with
//!   the same value, so a widening load introduces zero additional
//!   error on top of the one-time narrowing. The exhaustive test below
//!   round-trips the entire domain.
//! * [`f32_to_f16`] — narrowing with round-to-nearest-even, the same
//!   rounding hardware FPUs use. Values beyond ±65504 (f16 max)
//!   overflow to ±∞; values under the smallest subnormal flush to
//!   ±0; NaNs stay NaNs (payload truncated, never silently dropped).
//!
//! No `half` crate: the workspace is offline and the two functions are
//! ~40 lines of bit arithmetic each.

/// Exactly widens an IEEE binary16 bit pattern to f32.
#[inline]
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = ((h as u32) & 0x8000) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let mant = (h & 0x03FF) as u32;
    let bits = match (exp, mant) {
        (0, 0) => sign,
        (0, m) => {
            // Subnormal: value = m × 2⁻²⁴. Normalize the mantissa into
            // f32's implicit-leading-1 form.
            let top = 31 - m.leading_zeros();
            let e32 = 127 - 24 + top;
            let frac = (m << (23 - top)) & 0x007F_FFFF;
            sign | (e32 << 23) | frac
        }
        (31, 0) => sign | 0x7F80_0000,
        // NaN: keep the payload in the top mantissa bits so a
        // widen/narrow round trip preserves it.
        (31, m) => sign | 0x7F80_0000 | (m << 13),
        // Normal: re-bias the exponent (127 − 15 = 112) and shift the
        // mantissa up to 23 bits.
        _ => sign | ((exp + 112) << 23) | (mant << 13),
    };
    f32::from_bits(bits)
}

/// Narrows an f32 to IEEE binary16 with round-to-nearest-even.
#[inline]
pub fn f32_to_f16(v: f32) -> u16 {
    let bits = v.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp32 = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;
    if exp32 == 0xFF {
        // ±∞ stays ±∞; NaN stays NaN (quiet, truncated payload — never
        // collapsed to a non-NaN).
        return if mant == 0 {
            sign | 0x7C00
        } else {
            let payload = (mant >> 13) as u16;
            sign | 0x7C00 | if payload == 0 { 0x0200 } else { payload }
        };
    }
    let exp = exp32 - 112; // f16-biased exponent
    if exp >= 0x1F {
        return sign | 0x7C00;
    }
    if exp <= 0 {
        // Subnormal (or zero) in f16. Below 2⁻²⁵ everything rounds to
        // zero; at and above it, shift the 24-bit significand down to
        // subnormal position with round-to-nearest-even.
        if exp < -10 {
            return sign;
        }
        let m24 = mant | 0x0080_0000;
        let shift = (14 - exp) as u32;
        let kept = m24 >> shift;
        let rem = m24 & ((1 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let round_up = (rem > halfway) as u32 | ((rem == halfway) as u32 & (kept & 1));
        // A carry out of the subnormal field lands exactly on the
        // smallest normal encoding — the bit layout is continuous.
        return sign | (kept + round_up) as u16;
    }
    // Normal: drop 13 mantissa bits with round-to-nearest-even. The
    // rounding carry propagates into the exponent field by integer
    // addition; a carry out of exponent 30 yields 0x7C00 = ∞, which is
    // the correct rounding of values in (65504, ∞).
    let half = ((exp as u32) << 10) | (mant >> 13);
    let rem = mant & 0x1FFF;
    let round_up = (rem > 0x1000) as u32 | ((rem == 0x1000) as u32 & (half & 1));
    sign | (half + round_up) as u16
}

/// Narrows a whole f32 slice to little-endian f16 bytes (2 bytes per
/// element) — the on-disk layout of f16 weight sections.
pub fn narrow_slice_le(data: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 * data.len());
    for &v in data {
        out.extend_from_slice(&f32_to_f16(v).to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Independent reference widening: build the value arithmetically
    /// from the decoded fields rather than by bit surgery.
    fn reference_f16_to_f32(h: u16) -> f32 {
        let sign = if h & 0x8000 != 0 { -1.0f64 } else { 1.0 };
        let exp = (h >> 10) & 0x1F;
        let mant = (h & 0x3FF) as f64;
        let v = match exp {
            0 => sign * mant * (-24f64).exp2(),
            31 if mant == 0.0 => sign * f64::INFINITY,
            31 => f64::NAN,
            e => sign * (1.0 + mant / 1024.0) * f64::from(e as i32 - 15).exp2(),
        };
        v as f32
    }

    #[test]
    fn widening_is_exact_for_all_65536_patterns() {
        for h in 0..=u16::MAX {
            let got = f16_to_f32(h);
            let want = reference_f16_to_f32(h);
            if want.is_nan() {
                assert!(got.is_nan(), "{h:#06x} widened to non-NaN {got}");
            } else {
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "{h:#06x}: got {got}, want {want}"
                );
            }
        }
    }

    #[test]
    fn narrow_inverts_widen_for_all_patterns() {
        // Every f16 value is exactly representable in f32, so widening
        // then narrowing must be the identity on bits (NaNs keep their
        // payload because the widen puts it where the narrow reads it).
        for h in 0..=u16::MAX {
            let back = f32_to_f16(f16_to_f32(h));
            assert_eq!(back, h, "{h:#06x} round-tripped to {back:#06x}");
        }
    }

    #[test]
    fn narrowing_rounds_to_nearest_even() {
        // 1 + 2⁻¹¹ sits exactly halfway between 1.0 and the next f16
        // (1 + 2⁻¹⁰); ties go to the even mantissa, i.e. 1.0.
        assert_eq!(f32_to_f16(1.0 + f32::powi(2.0, -11)), 0x3C00);
        // The next halfway point (above an odd mantissa) rounds up.
        assert_eq!(f32_to_f16(1.0 + 3.0 * f32::powi(2.0, -11)), 0x3C02);
        // Anything past halfway rounds up regardless of parity.
        assert_eq!(f32_to_f16(1.0 + 1.5 * f32::powi(2.0, -11)), 0x3C01);
    }

    #[test]
    fn narrowing_saturates_and_flushes_at_the_boundaries() {
        assert_eq!(f32_to_f16(65504.0), 0x7BFF, "f16 max is finite");
        assert_eq!(f32_to_f16(65519.0), 0x7BFF, "below the rounding cut");
        assert_eq!(f32_to_f16(65520.0), 0x7C00, "rounds to infinity");
        assert_eq!(f32_to_f16(-65520.0), 0xFC00);
        assert_eq!(f32_to_f16(f32::INFINITY), 0x7C00);
        // Smallest f16 subnormal is 2⁻²⁴; half of it ties to even zero.
        assert_eq!(f32_to_f16(f32::powi(2.0, -24)), 0x0001);
        assert_eq!(f32_to_f16(f32::powi(2.0, -25)), 0x0000);
        assert_eq!(f32_to_f16(f32::powi(2.0, -25) * 1.5), 0x0001);
        assert_eq!(f32_to_f16(-0.0).to_be_bytes()[0], 0x80, "signed zero kept");
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
    }

    #[test]
    fn narrow_slice_le_is_the_elementwise_map() {
        let vals = [0.0f32, -1.5, std::f32::consts::PI, 65504.0, f32::NAN, 1e-8];
        let bytes = narrow_slice_le(&vals);
        assert_eq!(bytes.len(), 2 * vals.len());
        for (i, &v) in vals.iter().enumerate() {
            let h = u16::from_le_bytes([bytes[2 * i], bytes[2 * i + 1]]);
            assert_eq!(h, f32_to_f16(v));
        }
    }
}
