//! Dense `f32` tensors with tape-based reverse-mode automatic
//! differentiation — the deep-learning substrate of the SpectraGAN
//! reproduction.
//!
//! The paper trains its models with a GPU deep-learning framework; this
//! crate is the from-scratch CPU equivalent, scoped to exactly what the
//! SpectraGAN architecture needs:
//!
//! * [`Tensor`] — a contiguous row-major `f32` array with a shape, plus
//!   the non-differentiable numerics (creation, elementwise maps,
//!   matmul, conv2d, reductions).
//! * [`Tape`] / [`Var`] — a dynamic computation graph. Every
//!   differentiable op appends a node holding the result and a typed
//!   [`Op`] (parent indices plus the scalars backward needs).
//!   [`Tape::backward`] walks nodes in reverse creation order — always
//!   a valid reverse topological order — dispatching each through a
//!   single backward interpreter ([`ops`]), so gradient code is data,
//!   not a heap of boxed closures.
//! * [`arena`] — a thread-local buffer pool. Tensor storage is taken
//!   from and returned to it ([`Tensor`]'s `Drop` recycles), so the
//!   constant-shape training loop runs allocation-free after warm-up.
//! * [`stats`] — per-[`OpKind`] instrumentation (call counts, wall
//!   time, pool traffic), off by default and costing one relaxed atomic
//!   load per op until enabled.
//!
//! Differentiable ops live on [`Var`]: arithmetic, activations, matmul,
//! 2-D convolution, reductions, losses, concat/reshape/slice, plus the
//! fused `matmul+bias+activation` and `conv2d+bias` kernels the layer
//! stack emits (bit-equal to their unfused compositions). The inverse
//! real FFT the generator needs is *linear*, so it is expressed as a
//! matmul with a constant basis matrix (built in `spectragan-core`)
//! rather than a bespoke op.
//!
//! Design notes (following the smoltcp ethos the workspace adopts):
//! simplicity and robustness over cleverness — no type-level shape
//! tricks, shapes are checked at runtime with precise panic messages,
//! and every op has a numerical gradient check in the test suite.
//!
//! Heavy kernels (the conv2d and matmul families) dispatch through the
//! [`backend`] layer — a bit-exact scalar reference backend and an
//! im2col + blocked-GEMM SIMD backend, selected via `SPECTRAGAN_BACKEND`
//! or [`set_backend`] — and run on the deterministic work-stealing pool
//! in [`pool`]; per backend, results are bit-identical at every thread
//! count because work is split into index-addressed tiles with
//! unchanged per-tile summation order.

pub mod arena;
pub mod backend;
pub mod envctl;
pub mod f16;
pub mod ops;
pub mod pool;
pub mod q8;
pub mod shape;
pub mod stats;
pub mod tape;
pub mod tensor;

pub use arena::ArenaStats;
pub use backend::{set_backend, Backend, BackendKind};
pub use ops::{FusedAct, Op};
pub use shape::Shape;
pub use stats::{OpKind, OpStatEntry};
pub use tape::{Gradients, Tape, Var};
pub use tensor::Tensor;
