//! Dense `f32` tensors with tape-based reverse-mode automatic
//! differentiation — the deep-learning substrate of the SpectraGAN
//! reproduction.
//!
//! The paper trains its models with a GPU deep-learning framework; this
//! crate is the from-scratch CPU equivalent, scoped to exactly what the
//! SpectraGAN architecture needs:
//!
//! * [`Tensor`] — a contiguous row-major `f32` array with a shape, plus
//!   the non-differentiable numerics (creation, elementwise maps,
//!   matmul, conv2d, reductions).
//! * [`Tape`] / [`Var`] — a dynamic computation graph. Every
//!   differentiable op appends a node holding the result and, per
//!   parent, a closure that maps the upstream gradient to that parent's
//!   gradient contribution. [`Tape::backward`] walks nodes in reverse
//!   creation order, which is always a valid reverse topological order.
//!
//! Differentiable ops live on [`Var`]: arithmetic, activations, matmul,
//! 2-D convolution, reductions, losses, concat/reshape/slice. The
//! inverse real FFT the generator needs is *linear*, so it is expressed
//! as a matmul with a constant basis matrix (built in `spectragan-core`)
//! rather than a bespoke op.
//!
//! Design notes (following the smoltcp ethos the workspace adopts):
//! simplicity and robustness over cleverness — no type-level shape
//! tricks, shapes are checked at runtime with precise panic messages,
//! and every op has a numerical gradient check in the test suite.
//!
//! Heavy kernels (the conv2d family) run on the deterministic
//! work-stealing pool in [`pool`]; results are bit-identical at every
//! thread count because work is split into index-addressed tiles with
//! unchanged per-tile summation order.

pub mod pool;
pub mod shape;
pub mod tape;
pub mod tensor;

pub use shape::Shape;
pub use tape::{Gradients, Tape, Var};
pub use tensor::Tensor;
