//! The typed op set of the autodiff tape and its backward interpreter.
//!
//! Every differentiable operation is a variant of [`Op`]: parent node
//! indices plus whatever scalars the backward pass needs. Backward is
//! one interpreter, [`backward_node`], instead of per-node boxed
//! closures — ops are data, the reverse walk dispatches on the enum.
//!
//! **Determinism contract.** For each variant the interpreter computes
//! the *identical floating-point expressions* in the *identical order*
//! as the closure engine it replaced: per-parent contributions are
//! produced in the old parent order and accumulated with the same
//! `add_assign`-or-move rule, so the refactor is bit-invisible (the
//! golden fixtures in `spectragan-core` pin this down).
//!
//! The two fused variants ([`Op::MatmulBiasAct`], [`Op::Conv2dBias`])
//! collapse the dominant 2–3-node chains of the models into one node.
//! Their forward kernels run the *same* matmul/conv kernel followed by
//! an in-place bias add (and activation) with the same per-element
//! operation order as the unfused chain, and their backward recovers
//! the pre-activation gradient from the node's own output — valid
//! bitwise because `relu`/`leaky_relu` masks satisfy `y > 0 ⟺ x > 0`
//! for positive slopes and the smooth activations' derivatives are
//! functions of the output. Fused and unfused compositions are
//! therefore bit-equal in both directions (asserted by tests).

use crate::stats::OpKind;
use crate::tensor::Tensor;
use std::rc::Rc;

/// Activation fused into [`Op::MatmulBiasAct`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FusedAct {
    /// No activation.
    Identity,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU with the given (positive) negative slope.
    LeakyRelu(f32),
}

/// A tape node's operation: parent indices plus backward scalars.
#[derive(Debug, Clone)]
pub enum Op {
    /// Input node; backward stops here.
    Leaf,
    /// `a + b` elementwise.
    Add(usize, usize),
    /// `a - b` elementwise.
    Sub(usize, usize),
    /// `a ⊙ b` elementwise.
    Mul(usize, usize),
    /// `a / b` elementwise.
    Div(usize, usize),
    /// `x · s` for scalar `s`.
    Scale(usize, f32),
    /// `x + s` for scalar `s`.
    AddScalar(usize),
    /// `[N, M] + [M]` broadcast over rows.
    AddRowVec { x: usize, b: usize },
    /// `[N, C, H, W] + [C]` broadcast over channels.
    AddChannelBias { x: usize, b: usize },
    /// Logistic sigmoid.
    Sigmoid(usize),
    /// Hyperbolic tangent.
    Tanh(usize),
    /// Rectified linear unit.
    Relu(usize),
    /// Leaky ReLU with negative slope.
    LeakyRelu(usize, f32),
    /// Elementwise exponential.
    Exp(usize),
    /// Numerically-stable softplus.
    Softplus(usize),
    /// `sqrt(x + eps)` (backward needs only the output).
    SqrtEps(usize),
    /// Elementwise absolute value.
    Abs(usize),
    /// Clamp into `[lo, hi]`.
    Clamp { x: usize, lo: f32, hi: f32 },
    /// Elementwise square.
    Square(usize),
    /// `[m, k] @ [k, n]`.
    Matmul(usize, usize),
    /// Matmul with a constant (non-differentiated) right operand.
    MatmulConst { x: usize, m: Rc<Tensor> },
    /// 2-D cross-correlation, stride 1, zero padding `pad`.
    Conv2d { x: usize, w: usize, pad: usize },
    /// Reshape (backward restores the parent's shape).
    Reshape(usize),
    /// Axis permutation; `inverse` is the backward permutation.
    Permute { x: usize, inverse: Vec<usize> },
    /// 2×2 average pooling, stride 2.
    AvgPool2(usize),
    /// Contiguous slice along `axis` starting at `start`.
    Narrow { x: usize, axis: usize, start: usize },
    /// Concatenation of `parts` along `axis`.
    Concat { parts: Vec<usize>, axis: usize },
    /// Sum of all elements.
    Sum(usize),
    /// Mean of all elements.
    Mean(usize),
    /// Mean absolute error against a constant target.
    L1To { x: usize, target: Rc<Tensor> },
    /// Mean squared error against a constant target.
    MseTo { x: usize, target: Rc<Tensor> },
    /// `mean(softplus(x) − y·x)` against a constant label.
    BceWithLogits { x: usize, y: f32 },
    /// Fused `act(a @ w + b)` (one node instead of three).
    MatmulBiasAct {
        a: usize,
        w: usize,
        b: usize,
        act: FusedAct,
    },
    /// Fused `conv2d(x, w, pad) + b` (one node instead of two).
    Conv2dBias {
        x: usize,
        w: usize,
        b: usize,
        pad: usize,
    },
}

impl Op {
    /// The instrumentation kind of this op.
    pub fn kind(&self) -> OpKind {
        match self {
            Op::Leaf => OpKind::Leaf,
            Op::Add(..) => OpKind::Add,
            Op::Sub(..) => OpKind::Sub,
            Op::Mul(..) => OpKind::Mul,
            Op::Div(..) => OpKind::Div,
            Op::Scale(..) => OpKind::Scale,
            Op::AddScalar(..) => OpKind::AddScalar,
            Op::AddRowVec { .. } => OpKind::AddRowVec,
            Op::AddChannelBias { .. } => OpKind::AddChannelBias,
            Op::Sigmoid(..) => OpKind::Sigmoid,
            Op::Tanh(..) => OpKind::Tanh,
            Op::Relu(..) => OpKind::Relu,
            Op::LeakyRelu(..) => OpKind::LeakyRelu,
            Op::Exp(..) => OpKind::Exp,
            Op::Softplus(..) => OpKind::Softplus,
            Op::SqrtEps(..) => OpKind::SqrtEps,
            Op::Abs(..) => OpKind::Abs,
            Op::Clamp { .. } => OpKind::Clamp,
            Op::Square(..) => OpKind::Square,
            Op::Matmul(..) => OpKind::Matmul,
            Op::MatmulConst { .. } => OpKind::MatmulConst,
            Op::Conv2d { .. } => OpKind::Conv2d,
            Op::Reshape(..) => OpKind::Reshape,
            Op::Permute { .. } => OpKind::Permute,
            Op::AvgPool2(..) => OpKind::AvgPool2,
            Op::Narrow { .. } => OpKind::Narrow,
            Op::Concat { .. } => OpKind::Concat,
            Op::Sum(..) => OpKind::Sum,
            Op::Mean(..) => OpKind::Mean,
            Op::L1To { .. } => OpKind::L1To,
            Op::MseTo { .. } => OpKind::MseTo,
            Op::BceWithLogits { .. } => OpKind::BceWithLogits,
            Op::MatmulBiasAct { .. } => OpKind::MatmulBiasAct,
            Op::Conv2dBias { .. } => OpKind::Conv2dBias,
        }
    }
}

/// Numerically stable `ln(1 + e^x)`.
pub(crate) fn softplus_scalar(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Applies a fused activation to a slice, with the same expressions as
/// the standalone activation ops — the smooth activations route
/// through the active backend's elementwise kernels so fused and
/// unfused compositions stay bit-equal per backend.
pub(crate) fn apply_act_slice(y: &mut [f32], act: FusedAct) {
    match act {
        FusedAct::Identity => {}
        FusedAct::Sigmoid => crate::backend::active().sigmoid_slice(y),
        FusedAct::Tanh => crate::backend::active().tanh_slice(y),
        FusedAct::Relu => {
            for v in y {
                *v = v.max(0.0);
            }
        }
        FusedAct::LeakyRelu(alpha) => {
            for v in y {
                *v = if *v > 0.0 { *v } else { alpha * *v };
            }
        }
    }
}

/// Applies a fused activation in place over a whole tensor.
pub(crate) fn apply_act_inplace(y: &mut Tensor, act: FusedAct) {
    apply_act_slice(y.data_mut(), act);
}

/// Forward kernel of [`Op::MatmulBiasAct`]: validates shapes, then
/// dispatches to the active backend's fused kernel. On the scalar
/// backend this is the plain matmul kernel, then the bias added in
/// `add_rowvec`'s loop order, then the activation in place — bit-equal
/// to the unfused three-node chain.
pub(crate) fn matmul_bias_act_forward(a: &Tensor, w: &Tensor, b: &Tensor, act: FusedAct) -> Tensor {
    crate::tensor::matmul_check(a, w);
    let m = w.shape().dim(1);
    assert_eq!(
        b.shape().dims(),
        &[m],
        "bias shape {} does not match row width {m}",
        b.shape()
    );
    crate::backend::active().matmul_bias_act(a, w, b, act)
}

/// Forward kernel of [`Op::Conv2dBias`]: validates shapes, then
/// dispatches to the active backend's fused kernel. On the scalar
/// backend this is the plain conv2d kernel, then the bias added in
/// `add_channel_bias`'s loop order.
pub(crate) fn conv2d_bias_forward(x: &Tensor, w: &Tensor, b: &Tensor, pad: usize) -> Tensor {
    crate::backend::conv2d_out_shape(x.shape(), w.shape(), pad);
    let c = w.shape().dim(0);
    assert_eq!(
        b.shape().dims(),
        &[c],
        "bias shape {} does not match channels {c}",
        b.shape()
    );
    crate::backend::active().conv2d_bias(x, w, b, pad)
}

/// Pre-activation gradient of a fused activation, from the upstream
/// gradient `g` and the *activated output* `y`. The relu family uses
/// the output-sign mask, which equals the input-sign mask bitwise
/// (`y > 0 ⟺ x > 0` for `alpha > 0`); the smooth activations'
/// derivatives are the standalone ops' output-based expressions.
fn act_backward(g: &Tensor, y: &Tensor, act: FusedAct) -> Tensor {
    match act {
        FusedAct::Identity => g.clone(),
        FusedAct::Sigmoid => g.zip(y, |gi, yv| gi * yv * (1.0 - yv)),
        FusedAct::Tanh => g.zip(y, |gi, yv| gi * (1.0 - yv * yv)),
        FusedAct::Relu => g.zip(y, |gi, yv| if yv > 0.0 { gi } else { 0.0 }),
        FusedAct::LeakyRelu(alpha) => g.zip(y, |gi, yv| if yv > 0.0 { gi } else { alpha * gi }),
    }
}

/// Column sums of `g: [N, M] → [M]` in `add_rowvec`'s backward loop
/// order (rows outer).
fn rowvec_bias_grad(g: &Tensor) -> Tensor {
    let (n, m) = (g.shape().dim(0), g.shape().dim(1));
    let mut gb = Tensor::zeros([m]);
    for row in 0..n {
        for col in 0..m {
            gb.data_mut()[col] += g.data()[row * m + col];
        }
    }
    gb
}

/// Per-channel sums of `g: [N, C, H, W] → [C]` in `add_channel_bias`'s
/// backward loop order.
fn channel_bias_grad(g: &Tensor) -> Tensor {
    let (n, c) = (g.shape().dim(0), g.shape().dim(1));
    let hw = g.shape().dim(2) * g.shape().dim(3);
    let mut gb = Tensor::zeros([c]);
    for bi in 0..n {
        for ci in 0..c {
            let base = (bi * c + ci) * hw;
            gb.data_mut()[ci] += g.data()[base..base + hw].iter().sum::<f32>();
        }
    }
    gb
}

/// Accumulates a parent contribution with the tape's move-or-add rule
/// (first writer moves, later writers `add_assign` in visit order).
#[inline]
fn acc(grads: &mut [Option<Tensor>], parent: usize, contrib: Tensor) {
    match &mut grads[parent] {
        Some(existing) => existing.add_assign(&contrib),
        slot @ None => *slot = Some(contrib),
    }
}

/// Runs the backward step of node `id`: computes each parent's
/// gradient contribution from the upstream gradient `g` and
/// accumulates it into `grads`, preserving the closure engine's exact
/// expressions and accumulation order. `values[i]` is node `i`'s
/// forward value; `values[id]` is this node's own output.
pub(crate) fn backward_node(
    op: &Op,
    id: usize,
    values: &[Rc<Tensor>],
    g: &Tensor,
    grads: &mut [Option<Tensor>],
) {
    let val = |i: usize| -> &Tensor { &values[i] };
    match op {
        Op::Leaf => {}
        Op::Add(a, b) => {
            acc(grads, *a, g.clone());
            acc(grads, *b, g.clone());
        }
        Op::Sub(a, b) => {
            acc(grads, *a, g.clone());
            acc(grads, *b, g.scale(-1.0));
        }
        Op::Mul(a, b) => {
            acc(grads, *a, g.mul(val(*b)));
            acc(grads, *b, g.mul(val(*a)));
        }
        Op::Div(a, b) => {
            acc(grads, *a, g.zip(val(*b), |gi, yi| gi / yi));
            acc(
                grads,
                *b,
                g.zip(val(*a), |gi, xi| gi * xi)
                    .zip(val(*b), |t, yi| -t / (yi * yi)),
            );
        }
        Op::Scale(x, s) => {
            let s = *s;
            acc(grads, *x, g.scale(s));
        }
        Op::AddScalar(x) => acc(grads, *x, g.clone()),
        Op::AddRowVec { x, b } => {
            acc(grads, *x, g.clone());
            acc(grads, *b, rowvec_bias_grad(g));
        }
        Op::AddChannelBias { x, b } => {
            acc(grads, *x, g.clone());
            acc(grads, *b, channel_bias_grad(g));
        }
        Op::Sigmoid(x) => acc(grads, *x, g.zip(val(id), |gi, y| gi * y * (1.0 - y))),
        Op::Tanh(x) => acc(grads, *x, g.zip(val(id), |gi, y| gi * (1.0 - y * y))),
        Op::Relu(x) => acc(
            grads,
            *x,
            g.zip(val(*x), |gi, xi| if xi > 0.0 { gi } else { 0.0 }),
        ),
        Op::LeakyRelu(x, alpha) => {
            let alpha = *alpha;
            acc(
                grads,
                *x,
                g.zip(val(*x), |gi, xi| if xi > 0.0 { gi } else { alpha * gi }),
            );
        }
        Op::Exp(x) => acc(grads, *x, g.mul(val(id))),
        Op::Softplus(x) => acc(grads, *x, g.zip(val(*x), |gi, xi| gi / (1.0 + (-xi).exp()))),
        Op::SqrtEps(x) => acc(grads, *x, g.zip(val(id), |gi, y| gi * 0.5 / y)),
        Op::Abs(x) => acc(
            grads,
            *x,
            g.zip(val(*x), |gi, xi| {
                if xi > 0.0 {
                    gi
                } else if xi < 0.0 {
                    -gi
                } else {
                    0.0
                }
            }),
        ),
        Op::Clamp { x, lo, hi } => {
            let (lo, hi) = (*lo, *hi);
            acc(
                grads,
                *x,
                g.zip(val(*x), |gi, xi| if xi > lo && xi < hi { gi } else { 0.0 }),
            );
        }
        Op::Square(x) => acc(grads, *x, g.zip(val(*x), |gi, xi| 2.0 * gi * xi)),
        Op::Matmul(a, b) => {
            acc(grads, *a, g.matmul_bt(val(*b)));
            acc(grads, *b, val(*a).matmul_tb(g));
        }
        Op::MatmulConst { x, m } => acc(grads, *x, g.matmul_bt(m)),
        Op::Conv2d { x, w, pad } => {
            acc(
                grads,
                *x,
                Tensor::conv2d_grad_input(g, val(*w), val(*x).shape(), *pad),
            );
            acc(
                grads,
                *w,
                Tensor::conv2d_grad_weight(g, val(*x), val(*w).shape(), *pad),
            );
        }
        Op::Reshape(x) => acc(grads, *x, g.reshape(val(*x).shape().clone())),
        Op::Permute { x, inverse } => acc(grads, *x, g.permute(inverse)),
        Op::AvgPool2(x) => {
            let in_shape = val(*x).shape();
            let (n, c) = (in_shape.dim(0), in_shape.dim(1));
            let (h, w) = (in_shape.dim(2), in_shape.dim(3));
            let (oh, ow) = (h / 2, w / 2);
            let mut out = Tensor::zeros(in_shape.clone());
            for b in 0..n {
                for ch in 0..c {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let gv = 0.25 * g.at(&[b, ch, oy, ox]);
                            let base = ((b * c + ch) * h + 2 * oy) * w + 2 * ox;
                            out.data_mut()[base] += gv;
                            out.data_mut()[base + 1] += gv;
                            out.data_mut()[base + w] += gv;
                            out.data_mut()[base + w + 1] += gv;
                        }
                    }
                }
            }
            acc(grads, *x, out);
        }
        Op::Narrow { x, axis, start } => {
            // Scatter the slice gradient back into a zero tensor.
            let full = val(*x).shape().clone();
            let len = g.shape().dim(*axis);
            let mut out = Tensor::zeros(full.clone());
            let dims = full.dims();
            let outer: usize = dims[..*axis].iter().product();
            let inner: usize = dims[*axis + 1..].iter().product();
            for o in 0..outer {
                let dst = (o * dims[*axis] + start) * inner;
                let src = o * len * inner;
                out.data_mut()[dst..dst + len * inner]
                    .copy_from_slice(&g.data()[src..src + len * inner]);
            }
            acc(grads, *x, out);
        }
        Op::Concat { parts, axis } => {
            let mut start = 0usize;
            for &p in parts {
                let len = val(p).shape().dim(*axis);
                acc(grads, p, g.narrow(*axis, start, len));
                start += len;
            }
        }
        Op::Sum(x) => acc(grads, *x, Tensor::full(val(*x).shape().clone(), g.item())),
        Op::Mean(x) => {
            let n = val(*x).numel() as f32;
            acc(
                grads,
                *x,
                Tensor::full(val(*x).shape().clone(), g.item() / n),
            );
        }
        Op::L1To { x, target } => {
            let n = val(*x).numel() as f32;
            let gi = g.item() / n;
            acc(
                grads,
                *x,
                val(*x).zip(target, |a, b| {
                    if a > b {
                        gi
                    } else if a < b {
                        -gi
                    } else {
                        0.0
                    }
                }),
            );
        }
        Op::MseTo { x, target } => {
            let n = val(*x).numel() as f32;
            let gi = 2.0 * g.item() / n;
            acc(grads, *x, val(*x).zip(target, |a, b| gi * (a - b)));
        }
        Op::BceWithLogits { x, y } => {
            let n = val(*x).numel() as f32;
            let gi = g.item() / n;
            let y = *y;
            // d/dx [softplus(x) − y·x] = σ(x) − y.
            acc(
                grads,
                *x,
                val(*x).map(|xi| gi * (1.0 / (1.0 + (-xi).exp()) - y)),
            );
        }
        Op::MatmulBiasAct { a, w, b, act } => {
            let gpre = act_backward(g, val(id), *act);
            acc(grads, *a, gpre.matmul_bt(val(*w)));
            acc(grads, *w, val(*a).matmul_tb(&gpre));
            acc(grads, *b, rowvec_bias_grad(&gpre));
        }
        Op::Conv2dBias { x, w, b, pad } => {
            acc(
                grads,
                *x,
                Tensor::conv2d_grad_input(g, val(*w), val(*x).shape(), *pad),
            );
            acc(
                grads,
                *w,
                Tensor::conv2d_grad_weight(g, val(*x), val(*w).shape(), *pad),
            );
            acc(grads, *b, channel_bias_grad(g));
        }
    }
}
