//! Deterministic data-parallel compute pool.
//!
//! Every parallel routine in the workspace funnels through this module,
//! and all of them share one contract: **the result is bit-identical to
//! the serial execution, at any thread count**. That holds because work
//! is split into *indexed* tasks whose outputs go to disjoint,
//! index-addressed destinations — which thread happens to execute task
//! `i` never changes what task `i` computes or where it writes. Only
//! wall-clock time depends on the thread count.
//!
//! Scheduling is self-balancing: workers claim task indices from a
//! shared atomic counter, so a slow tile does not stall the rest of the
//! batch. Threads are scoped ([`std::thread::scope`]), so borrowed
//! inputs need no `'static` gymnastics and panics propagate to the
//! caller.
//!
//! The worker count comes from, in priority order:
//! 1. [`set_threads`] (programmatic override, used by tests to compare
//!    thread counts in-process),
//! 2. the `SPECTRAGAN_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! At one thread every routine degrades to a plain serial loop on the
//! calling thread — no pool, no atomics, no unsafe.

use spectragan_obs as obs;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Cached `&'static` metric handles so hot paths pay no registry
/// lookup. All recording self-gates on [`obs::enabled`]; when the
/// observability layer is off each parallel routine costs one extra
/// relaxed atomic load per *call* (not per task).
struct PoolMetrics {
    /// Tasks executed across all parallel routines.
    tasks: &'static obs::Counter,
    /// Per-task `produce` duration in [`par_fold_ordered`].
    task_ns: &'static obs::Histogram,
    /// Worker time from arrival to claiming an index (lock + window
    /// gate) in [`par_fold_ordered`].
    space_wait_ns: &'static obs::Histogram,
    /// Consumer time waiting for the next in-order output in
    /// [`par_fold_ordered`].
    fold_wait_ns: &'static obs::Histogram,
}

fn metrics() -> &'static PoolMetrics {
    static M: OnceLock<PoolMetrics> = OnceLock::new();
    M.get_or_init(|| PoolMetrics {
        tasks: obs::counter("spectragan_pool_tasks_total"),
        task_ns: obs::histogram("spectragan_pool_task_ns"),
        space_wait_ns: obs::histogram("spectragan_pool_space_wait_ns"),
        fold_wait_ns: obs::histogram("spectragan_pool_fold_wait_ns"),
    })
}

/// The `SPECTRAGAN_THREADS` knob, sharing the override/env/default
/// resolution contract of [`crate::envctl`].
static THREADS: crate::envctl::EnvCtl = crate::envctl::EnvCtl::new("SPECTRAGAN_THREADS");

/// Overrides the worker count for subsequent parallel calls.
/// `Some(n)` forces `n` workers (`n >= 1`); `None` restores the
/// environment/default resolution.
///
/// Results never depend on this setting — it exists so tests and
/// benchmarks can sweep thread counts within one process.
pub fn set_threads(n: Option<usize>) {
    if let Some(n) = n {
        assert!(n >= 1, "thread count must be at least 1");
    }
    THREADS.set(n);
}

/// The worker count parallel routines will use right now: the
/// [`set_threads`] override, else `SPECTRAGAN_THREADS`, else
/// [`std::thread::available_parallelism`]. The environment/default
/// resolution is cached on first use (see [`crate::envctl`]).
pub fn threads() -> usize {
    THREADS.get(crate::envctl::parse_count, || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Runs `f(0..n_tasks)` across the pool and returns the results in
/// task-index order, exactly as the serial `(0..n_tasks).map(f)` would.
///
/// `f` must be safe to call concurrently; each index is claimed by
/// exactly one worker.
pub fn par_map<R, F>(n_tasks: usize, f: F) -> Vec<R>
where
    R: Send + Sync,
    F: Fn(usize) -> R + Sync,
{
    if obs::enabled() {
        metrics().tasks.inc(n_tasks as u64);
    }
    let workers = threads().min(n_tasks);
    if workers <= 1 {
        return (0..n_tasks).map(f).collect();
    }
    let slots: Vec<OnceLock<R>> = (0..n_tasks).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_tasks {
                    break;
                }
                let _ = slots[i].set(f(i));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("each task index is claimed exactly once")
        })
        .collect()
}

/// Splits `data` into `data.len() / chunk_len` consecutive tiles and
/// runs `f(tile_index, tile)` across the pool. Tiles are disjoint and
/// index-addressed, so the final contents of `data` are independent of
/// the thread count.
///
/// # Panics
/// Panics if `chunk_len` is zero or does not divide `data.len()`.
pub fn par_chunks_mut<F>(data: &mut [f32], chunk_len: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    assert_eq!(
        data.len() % chunk_len,
        0,
        "chunk_len must divide the buffer length"
    );
    let n_chunks = data.len() / chunk_len;
    if obs::enabled() {
        metrics().tasks.inc(n_chunks as u64);
    }
    let workers = threads().min(n_chunks);
    if workers <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let base = SendPtr(data.as_mut_ptr());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let base = &base;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_chunks {
                        break;
                    }
                    // SAFETY: tile i covers i*chunk_len..(i+1)*chunk_len,
                    // within bounds by construction; the atomic counter
                    // hands each index to exactly one worker, so tiles
                    // never alias, and the scope keeps `data` borrowed
                    // for the whole run.
                    let tile = unsafe {
                        std::slice::from_raw_parts_mut(base.0.add(i * chunk_len), chunk_len)
                    };
                    f(i, tile);
                }
            });
        }
    });
}

/// A raw pointer blessed for cross-thread use; sound because
/// [`par_chunks_mut`] derives only disjoint slices from it.
struct SendPtr(*mut f32);

unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Shared state of [`par_fold_ordered`]: a ring of `window` slots plus
/// the claim/fold frontiers, all under one mutex.
struct FoldState<T> {
    /// Slot `i % window` holds task `i`'s output between production and
    /// consumption. The claim gate guarantees a slot is vacated before
    /// the index `window` later can be claimed, so slots never collide.
    slots: Vec<Option<T>>,
    /// Next unclaimed task index (monotonic).
    next: usize,
    /// Number of outputs the consumer has taken from the ring; tasks
    /// `0..folded` are done from the ring's point of view.
    folded: usize,
    /// Set when a worker or the consumer panicked, so every other
    /// participant wakes up and bails instead of waiting forever.
    poisoned: bool,
}

/// Wakes everyone and marks the run poisoned if dropped while armed —
/// i.e. during a panic unwind in `produce` or `fold`. Turns would-be
/// deadlocks (peers waiting on a slot that will never fill, or on
/// window space that will never free) into a clean scope join that
/// propagates the original panic.
struct PoisonGuard<'a, T> {
    state: &'a Mutex<FoldState<T>>,
    space: &'a Condvar,
    ready: &'a Condvar,
    armed: bool,
}

impl<T> Drop for PoisonGuard<'_, T> {
    fn drop(&mut self) {
        if self.armed {
            // The std mutex may itself be poisoned mid-unwind; the
            // state is still coherent (no lock is held across user
            // callbacks), so recover the guard and proceed.
            let mut s = self
                .state
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            s.poisoned = true;
            drop(s);
            self.space.notify_all();
            self.ready.notify_all();
        }
    }
}

/// Runs `produce(i)` for `i in 0..n_tasks` across the pool and folds
/// every output **in task-index order on the calling thread** —
/// semantically identical to `for i in 0..n_tasks { fold(i, produce(i)) }`
/// at any thread count, including the order in which `fold` observes
/// results. Use it when the reduction is order-sensitive (bit-exact
/// accumulation) and outputs are too large to buffer all at once.
///
/// `window` bounds the number of tasks past the fold frontier that may
/// be *claimed* at any moment: a worker does not start task `i` until
/// `i < folded + window`. At most `window` outputs therefore exist
/// simultaneously (in flight or parked in the ring), independent of
/// `n_tasks` — that is the memory bound streaming callers rely on.
/// Workers block for space and the consumer blocks for the next
/// in-order output (classic bounded-buffer backpressure); a panic in
/// `produce` or `fold` wakes all parties and propagates instead of
/// deadlocking.
///
/// With one worker (or `window == 1`, which serializes anyway) this is
/// exactly the plain serial loop.
///
/// # Panics
/// Panics if `window` is zero.
pub fn par_fold_ordered<T, P, F>(n_tasks: usize, window: usize, produce: P, mut fold: F)
where
    T: Send,
    P: Fn(usize) -> T + Sync,
    F: FnMut(usize, T),
{
    assert!(window >= 1, "window must be at least 1");
    if obs::enabled() {
        metrics().tasks.inc(n_tasks as u64);
    }
    let workers = threads().min(n_tasks).min(window);
    if workers <= 1 {
        for i in 0..n_tasks {
            fold(i, produce(i));
        }
        return;
    }

    let state: Mutex<FoldState<T>> = Mutex::new(FoldState {
        slots: (0..window).map(|_| None).collect(),
        next: 0,
        folded: 0,
        poisoned: false,
    });
    let space = Condvar::new();
    let ready = Condvar::new();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Claim the next index once it is inside the window.
                let t_claim = obs::enabled().then(Instant::now);
                let i = {
                    let mut s = state.lock().unwrap();
                    loop {
                        if s.poisoned || s.next >= n_tasks {
                            return;
                        }
                        if s.next < s.folded + window {
                            break;
                        }
                        s = space.wait(s).unwrap();
                    }
                    let i = s.next;
                    s.next += 1;
                    i
                };
                if let Some(t0) = t_claim {
                    metrics()
                        .space_wait_ns
                        .record(t0.elapsed().as_nanos() as u64);
                }
                let mut guard = PoisonGuard {
                    state: &state,
                    space: &space,
                    ready: &ready,
                    armed: true,
                };
                let t_task = obs::enabled().then(Instant::now);
                let out = produce(i);
                if let Some(t0) = t_task {
                    metrics().task_ns.record(t0.elapsed().as_nanos() as u64);
                }
                guard.armed = false;
                {
                    let mut s = state.lock().unwrap();
                    debug_assert!(
                        s.slots[i % window].is_none(),
                        "window gate must vacate a slot before reuse"
                    );
                    s.slots[i % window] = Some(out);
                }
                ready.notify_one();
            });
        }

        // Consumer: the calling thread folds in index order.
        for i in 0..n_tasks {
            let t_wait = obs::enabled().then(Instant::now);
            let item = {
                let mut s = state.lock().unwrap();
                loop {
                    if s.poisoned {
                        break None;
                    }
                    if let Some(v) = s.slots[i % window].take() {
                        s.folded = i + 1;
                        break Some(v);
                    }
                    s = ready.wait(s).unwrap();
                }
            };
            if let Some(t0) = t_wait {
                metrics()
                    .fold_wait_ns
                    .record(t0.elapsed().as_nanos() as u64);
            }
            let Some(item) = item else {
                // A worker panicked; exit so the scope joins and
                // propagates its panic.
                break;
            };
            space.notify_all();
            let mut guard = PoisonGuard {
                state: &state,
                space: &space,
                ready: &ready,
                armed: true,
            };
            fold(i, item);
            guard.armed = false;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the tests that touch the global override.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn par_map_preserves_index_order() {
        let _g = LOCK.lock().unwrap();
        for t in [1, 2, 3, 8] {
            set_threads(Some(t));
            let got = par_map(17, |i| i * i);
            assert_eq!(
                got,
                (0..17).map(|i| i * i).collect::<Vec<_>>(),
                "threads={t}"
            );
        }
        set_threads(None);
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(4));
        assert_eq!(par_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, |i| i + 5), vec![5]);
        set_threads(None);
    }

    #[test]
    fn par_chunks_mut_matches_serial_at_any_thread_count() {
        let _g = LOCK.lock().unwrap();
        let fill = |i: usize, chunk: &mut [f32]| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (i * 100 + j) as f32;
            }
        };
        set_threads(Some(1));
        let mut serial = vec![0.0f32; 60];
        par_chunks_mut(&mut serial, 5, fill);
        for t in [2, 4, 7] {
            set_threads(Some(t));
            let mut parallel = vec![0.0f32; 60];
            par_chunks_mut(&mut parallel, 5, fill);
            assert_eq!(parallel, serial, "threads={t}");
        }
        set_threads(None);
    }

    #[test]
    fn override_beats_environment() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(3));
        assert_eq!(threads(), 3);
        set_threads(None);
        assert!(threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "chunk_len must divide")]
    fn ragged_chunks_are_rejected() {
        let mut data = vec![0.0f32; 10];
        par_chunks_mut(&mut data, 3, |_, _| {});
    }

    #[test]
    fn fold_ordered_matches_serial_loop() {
        let _g = LOCK.lock().unwrap();
        let serial: Vec<(usize, u64)> = (0..37).map(|i| (i, (i * i) as u64)).collect();
        for t in [1, 2, 3, 8] {
            set_threads(Some(t));
            for window in [1, 2, 4, 64] {
                let mut got = Vec::new();
                par_fold_ordered(37, window, |i| (i * i) as u64, |i, v| got.push((i, v)));
                assert_eq!(got, serial, "threads={t} window={window}");
            }
        }
        set_threads(None);
    }

    #[test]
    fn fold_ordered_handles_empty_and_single() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(4));
        let mut seen = Vec::new();
        par_fold_ordered(0, 4, |i| i, |i, v| seen.push((i, v)));
        assert!(seen.is_empty());
        par_fold_ordered(1, 4, |i| i + 9, |i, v| seen.push((i, v)));
        assert_eq!(seen, vec![(0, 9)]);
        set_threads(None);
    }

    /// The claim gate keeps produced-but-unconsumed outputs bounded by
    /// the window. Outstanding is counted from `produce` entry to
    /// `fold` entry; the consumer may have taken one item out of the
    /// ring before its `fold` call decrements, hence the `+ 1`.
    #[test]
    fn fold_ordered_bounds_outstanding_outputs() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(8));
        let window = 3;
        let outstanding = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        par_fold_ordered(
            64,
            window,
            |i| {
                let now = outstanding.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                // Give other workers a chance to pile up against the gate.
                std::thread::yield_now();
                vec![i as f32; 256]
            },
            |_, buf| {
                outstanding.fetch_sub(1, Ordering::SeqCst);
                assert_eq!(buf.len(), 256);
            },
        );
        set_threads(None);
        assert!(
            peak.load(Ordering::SeqCst) <= window + 1,
            "window gate leaked: peak {} > {}",
            peak.load(Ordering::SeqCst),
            window + 1
        );
    }

    #[test]
    fn fold_ordered_worker_panic_propagates() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(4));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_fold_ordered(
                32,
                4,
                |i| {
                    if i == 5 {
                        panic!("produce failed");
                    }
                    i
                },
                |_, _| {},
            );
        }));
        set_threads(None);
        assert!(r.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn fold_ordered_consumer_panic_propagates() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(4));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_fold_ordered(
                32,
                4,
                |i| i,
                |i, _| {
                    if i == 3 {
                        panic!("fold failed");
                    }
                },
            );
        }));
        set_threads(None);
        assert!(r.is_err(), "consumer panic must reach the caller");
    }
}
