//! Deterministic data-parallel compute pool.
//!
//! Every parallel routine in the workspace funnels through this module,
//! and all of them share one contract: **the result is bit-identical to
//! the serial execution, at any thread count**. That holds because work
//! is split into *indexed* tasks whose outputs go to disjoint,
//! index-addressed destinations — which thread happens to execute task
//! `i` never changes what task `i` computes or where it writes. Only
//! wall-clock time depends on the thread count.
//!
//! Scheduling is self-balancing: workers claim task indices from a
//! shared atomic counter, so a slow tile does not stall the rest of the
//! batch. Threads are scoped ([`std::thread::scope`]), so borrowed
//! inputs need no `'static` gymnastics and panics propagate to the
//! caller.
//!
//! The worker count comes from, in priority order:
//! 1. [`set_threads`] (programmatic override, used by tests to compare
//!    thread counts in-process),
//! 2. the `SPECTRAGAN_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! At one thread every routine degrades to a plain serial loop on the
//! calling thread — no pool, no atomics, no unsafe.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Programmatic override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count for subsequent parallel calls.
/// `Some(n)` forces `n` workers (`n >= 1`); `None` restores the
/// environment/default resolution.
///
/// Results never depend on this setting — it exists so tests and
/// benchmarks can sweep thread counts within one process.
pub fn set_threads(n: Option<usize>) {
    let v = match n {
        Some(n) => {
            assert!(n >= 1, "thread count must be at least 1");
            n
        }
        None => 0,
    };
    THREAD_OVERRIDE.store(v, Ordering::Relaxed);
}

/// The worker count parallel routines will use right now.
pub fn threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced != 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("SPECTRAGAN_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f(0..n_tasks)` across the pool and returns the results in
/// task-index order, exactly as the serial `(0..n_tasks).map(f)` would.
///
/// `f` must be safe to call concurrently; each index is claimed by
/// exactly one worker.
pub fn par_map<R, F>(n_tasks: usize, f: F) -> Vec<R>
where
    R: Send + Sync,
    F: Fn(usize) -> R + Sync,
{
    let workers = threads().min(n_tasks);
    if workers <= 1 {
        return (0..n_tasks).map(f).collect();
    }
    let slots: Vec<OnceLock<R>> = (0..n_tasks).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_tasks {
                    break;
                }
                let _ = slots[i].set(f(i));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("each task index is claimed exactly once")
        })
        .collect()
}

/// Splits `data` into `data.len() / chunk_len` consecutive tiles and
/// runs `f(tile_index, tile)` across the pool. Tiles are disjoint and
/// index-addressed, so the final contents of `data` are independent of
/// the thread count.
///
/// # Panics
/// Panics if `chunk_len` is zero or does not divide `data.len()`.
pub fn par_chunks_mut<F>(data: &mut [f32], chunk_len: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    assert_eq!(
        data.len() % chunk_len,
        0,
        "chunk_len must divide the buffer length"
    );
    let n_chunks = data.len() / chunk_len;
    let workers = threads().min(n_chunks);
    if workers <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let base = SendPtr(data.as_mut_ptr());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let base = &base;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_chunks {
                        break;
                    }
                    // SAFETY: tile i covers i*chunk_len..(i+1)*chunk_len,
                    // within bounds by construction; the atomic counter
                    // hands each index to exactly one worker, so tiles
                    // never alias, and the scope keeps `data` borrowed
                    // for the whole run.
                    let tile = unsafe {
                        std::slice::from_raw_parts_mut(base.0.add(i * chunk_len), chunk_len)
                    };
                    f(i, tile);
                }
            });
        }
    });
}

/// A raw pointer blessed for cross-thread use; sound because
/// [`par_chunks_mut`] derives only disjoint slices from it.
struct SendPtr(*mut f32);

unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the tests that touch the global override.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn par_map_preserves_index_order() {
        let _g = LOCK.lock().unwrap();
        for t in [1, 2, 3, 8] {
            set_threads(Some(t));
            let got = par_map(17, |i| i * i);
            assert_eq!(
                got,
                (0..17).map(|i| i * i).collect::<Vec<_>>(),
                "threads={t}"
            );
        }
        set_threads(None);
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(4));
        assert_eq!(par_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, |i| i + 5), vec![5]);
        set_threads(None);
    }

    #[test]
    fn par_chunks_mut_matches_serial_at_any_thread_count() {
        let _g = LOCK.lock().unwrap();
        let fill = |i: usize, chunk: &mut [f32]| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (i * 100 + j) as f32;
            }
        };
        set_threads(Some(1));
        let mut serial = vec![0.0f32; 60];
        par_chunks_mut(&mut serial, 5, fill);
        for t in [2, 4, 7] {
            set_threads(Some(t));
            let mut parallel = vec![0.0f32; 60];
            par_chunks_mut(&mut parallel, 5, fill);
            assert_eq!(parallel, serial, "threads={t}");
        }
        set_threads(None);
    }

    #[test]
    fn override_beats_environment() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(3));
        assert_eq!(threads(), 3);
        set_threads(None);
        assert!(threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "chunk_len must divide")]
    fn ragged_chunks_are_rejected() {
        let mut data = vec![0.0f32; 10];
        par_chunks_mut(&mut data, 3, |_, _| {});
    }
}
