//! Symmetric int8 quantization for the reduced-precision weight path.
//!
//! Like [`crate::f16`], int8 is a *storage* format: every kernel still
//! computes in f32, and a quantized weight only ever re-enters the
//! compute path through the exact dequantization `v = q · s` (either
//! widened whole by `Backend::widen_i8_scaled` or streamed through the
//! dequantizing GEMM `Backend::matmul_q8`).
//!
//! The scheme is **symmetric absmax**, the simplest quantizer whose
//! error is analyzable per element:
//!
//! * one f32 scale per *row* (a matrix row, a conv out-channel) or per
//!   tensor, `s = absmax / 127` — so the row's largest-magnitude value
//!   maps to ±127 exactly;
//! * `q = round(v / s)` clamped to `[-127, 127]` (−128 is never
//!   produced, keeping the code symmetric around zero);
//! * an all-zero row gets `s = 1.0`, never `0/0 = NaN`, and
//!   dequantizes back to exact zeros;
//! * a row containing a non-finite value gets its absmax over the
//!   finite values; the non-finite elements saturate to ±127 (NaN to
//!   0), which the export path treats as acceptable because trained
//!   weights are finite — the *load* path separately refuses
//!   non-finite scales so a corrupt container can never dequantize to
//!   NaN.
//!
//! Round-trip error is ≤ `s/2` per element (up to one float ulp), the
//! bound the property tests in `core/tests/quantization.rs` assert.
//! Quantization is a pure sequential function of its input — no
//! threading, no backend dispatch — so exports are deterministic
//! across machines, thread counts and backends by construction.

use crate::shape::Shape;

/// Quantized rows: the i8 payload (stored as raw bytes, one per
/// element, two's complement) plus one f32 scale per row.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantized {
    /// `q` values as bytes (`q as u8`), row-major, 1 byte per element.
    pub data: Vec<u8>,
    /// One scale per row, `data.len() / rows` elements each.
    pub scales: Vec<f32>,
}

/// How many scale rows a tensor of `shape` quantizes into: one per
/// leading-dimension row for matrices and conv kernels (`ndim ≥ 2`),
/// one for the whole tensor otherwise (biases, scalars). This is the
/// canonical granularity shared by the exporter, the container parser
/// and `ParamStore`'s int8 slots.
pub fn scale_rows(shape: &Shape) -> usize {
    if shape.ndim() >= 2 {
        shape.dim(0)
    } else {
        1
    }
}

/// The absmax scale for one row: `absmax / 127`, with all-zero (and
/// all-non-finite) rows pinned to `1.0` so dequantization never
/// divides by or multiplies with zero/NaN.
pub fn row_scale(row: &[f32]) -> f32 {
    let mut absmax = 0.0f32;
    for &v in row {
        let a = v.abs();
        if a.is_finite() && a > absmax {
            absmax = a;
        }
    }
    if absmax > 0.0 {
        absmax / 127.0
    } else {
        1.0
    }
}

/// Quantizes `data` as `rows` equal-length rows (symmetric absmax, see
/// module docs). `rows` must divide `data.len()`; `rows == 0` is only
/// valid for empty data.
pub fn quantize_rows(data: &[f32], rows: usize) -> Quantized {
    if data.is_empty() {
        return Quantized {
            data: Vec::new(),
            scales: vec![1.0; rows],
        };
    }
    assert!(
        rows > 0 && data.len().is_multiple_of(rows),
        "quantize_rows: {} elements do not split into {rows} rows",
        data.len()
    );
    let row_len = data.len() / rows;
    let mut out = Vec::with_capacity(data.len());
    let mut scales = Vec::with_capacity(rows);
    for row in data.chunks_exact(row_len) {
        let s = row_scale(row);
        scales.push(s);
        for &v in row {
            let q = (v / s).round();
            // NaN fails both comparisons and falls through to 0.
            let q = if q >= 127.0 {
                127
            } else if q <= -127.0 {
                -127
            } else {
                q as i8
            };
            out.push(q as u8);
        }
    }
    Quantized { data: out, scales }
}

/// Quantizes a whole tensor's data at the canonical granularity of
/// [`scale_rows`].
pub fn quantize_tensor(data: &[f32], shape: &Shape) -> Quantized {
    quantize_rows(data, scale_rows(shape))
}

/// Reference dequantization: `out[i] = q[i] · s[row(i)]`. This exact
/// expression is the contract every backend kernel must reproduce
/// bit-for-bit (`widen_i8_scaled`) or reassociate within tolerance
/// (`matmul_q8`).
pub fn dequantize_rows(q: &Quantized, out: &mut [f32]) {
    assert_eq!(q.data.len(), out.len(), "dequantize_rows length mismatch");
    if out.is_empty() {
        return;
    }
    assert!(
        !q.scales.is_empty() && q.data.len().is_multiple_of(q.scales.len()),
        "dequantize_rows: {} elements do not split into {} rows",
        q.data.len(),
        q.scales.len()
    );
    let row_len = q.data.len() / q.scales.len();
    for (r, (chunk, o_chunk)) in q
        .data
        .chunks_exact(row_len)
        .zip(out.chunks_exact_mut(row_len))
        .enumerate()
    {
        let s = q.scales[r];
        for (&b, o) in chunk.iter().zip(o_chunk) {
            *o = (b as i8 as i32 as f32) * s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absmax_maps_to_127_and_roundtrip_is_bounded() {
        let data = [0.5f32, -2.0, 1.25, 0.003, -0.75, 2.0, 0.0, 1.0];
        let q = quantize_rows(&data, 1);
        assert_eq!(q.scales.len(), 1);
        let s = q.scales[0];
        assert_eq!(s, 2.0 / 127.0);
        // The ±absmax elements hit ±127 exactly.
        assert_eq!(q.data[1] as i8, -127);
        assert_eq!(q.data[5] as i8, 127);
        let mut back = [0f32; 8];
        dequantize_rows(&q, &mut back);
        for (&v, &d) in data.iter().zip(&back) {
            assert!(
                (v - d).abs() <= 0.5 * s * (1.0 + 1e-5),
                "roundtrip error for {v}: got {d}, scale {s}"
            );
        }
    }

    #[test]
    fn zero_rows_get_unit_scale_and_exact_zeros() {
        let q = quantize_rows(&[0.0; 6], 2);
        assert_eq!(q.scales, vec![1.0, 1.0]);
        let mut back = [1f32; 6];
        dequantize_rows(&q, &mut back);
        assert_eq!(back, [0.0; 6]);
    }

    #[test]
    fn rows_are_scaled_independently() {
        let data = [1.0f32, -1.0, 1000.0, 500.0];
        let q = quantize_rows(&data, 2);
        assert_eq!(q.scales[0], 1.0 / 127.0);
        assert_eq!(q.scales[1], 1000.0 / 127.0);
        let mut back = [0f32; 4];
        dequantize_rows(&q, &mut back);
        // Small-magnitude row keeps its resolution despite the large row.
        assert!((back[0] - 1.0).abs() < 1e-6);
        assert!((back[1] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn non_finite_values_saturate_instead_of_poisoning() {
        let q = quantize_rows(&[f32::INFINITY, -f32::INFINITY, f32::NAN, 1.0], 1);
        assert_eq!(q.scales[0], 1.0 / 127.0);
        assert_eq!(q.data[0] as i8, 127);
        assert_eq!(q.data[1] as i8, -127);
        assert_eq!(q.data[2] as i8, 0);
    }

    #[test]
    fn scale_rows_follows_rank() {
        assert_eq!(scale_rows(&Shape(vec![3, 4])), 3);
        assert_eq!(scale_rows(&Shape(vec![5, 2, 3, 3])), 5);
        assert_eq!(scale_rows(&Shape(vec![7])), 1);
        assert_eq!(scale_rows(&Shape(vec![])), 1);
    }
}
