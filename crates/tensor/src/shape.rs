//! Tensor shapes: dimension lists with element counts and row-major
//! offset computation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a tensor: a list of dimension sizes, row-major.
///
/// A scalar has the empty shape `[]` and one element.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Creates a shape from a dimension list.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (1 for a scalar).
    #[inline]
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Dimension sizes as a slice.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Size of dimension `i`.
    ///
    /// # Panics
    /// Panics if `i >= ndim()`.
    #[inline]
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-index.
    ///
    /// # Panics
    /// Panics if the index rank or any coordinate is out of range.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.0.len(),
            "index rank {} does not match shape {self}",
            index.len()
        );
        let mut off = 0;
        let strides = self.strides();
        for (d, (&i, &s)) in index.iter().zip(&strides).enumerate() {
            assert!(
                i < self.0[d],
                "index {i} out of range for dim {d} of {self}"
            );
            off += i * s;
        }
        off
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_ndim() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.ndim(), 3);
        let scalar = Shape::new(&[]);
        assert_eq!(scalar.numel(), 1);
        assert_eq!(scalar.ndim(), 0);
    }

    #[test]
    fn row_major_strides() {
        assert_eq!(Shape::from([2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::from([5]).strides(), vec![1]);
        assert!(Shape::new(&[]).strides().is_empty());
    }

    #[test]
    fn offsets_enumerate_row_major() {
        let s = Shape::from([2, 3]);
        let mut seen = Vec::new();
        for i in 0..2 {
            for j in 0..3 {
                seen.push(s.offset(&[i, j]));
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn offset_bounds_checked() {
        Shape::from([2, 3]).offset(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn offset_rank_checked() {
        Shape::from([2, 3]).offset(&[1]);
    }

    #[test]
    fn display_formats_like_a_list() {
        assert_eq!(Shape::from([2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::new(&[]).to_string(), "[]");
    }
}
