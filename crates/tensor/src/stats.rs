//! Per-op instrumentation: call counts, wall time and pool traffic by
//! [`OpKind`], gated behind a global flag.
//!
//! When disabled (the default) the only cost per op is one relaxed
//! atomic load. When enabled, every forward op and every node of the
//! backward interpreter records its kind, elapsed nanoseconds and the
//! bytes the [`crate::arena`] served fresh vs. reused while that op was
//! the innermost active scope. [`take_table`] drains the counters —
//! the trainer calls it once per step and appends the table to
//! `train_log.jsonl`.
//!
//! Counters are thread-local; the training loop builds its graphs on
//! one thread, so its table is complete. Kernel-internal worker
//! threads ([`crate::pool`]) never allocate tensors, so nothing is
//! lost to them.

use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// The kind of a tape operation, used to index the stats table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum OpKind {
    Leaf,
    Add,
    Sub,
    Mul,
    Div,
    Scale,
    AddScalar,
    AddRowVec,
    AddChannelBias,
    Sigmoid,
    Tanh,
    Relu,
    LeakyRelu,
    Exp,
    Softplus,
    SqrtEps,
    Abs,
    Clamp,
    Square,
    Matmul,
    MatmulConst,
    Conv2d,
    Reshape,
    Permute,
    AvgPool2,
    Narrow,
    Concat,
    Sum,
    Mean,
    L1To,
    MseTo,
    BceWithLogits,
    MatmulBiasAct,
    Conv2dBias,
    /// Tensor work outside any tape op (optimizer, data prep, …).
    Other,
}

const N_KINDS: usize = OpKind::Other as usize + 1;

impl OpKind {
    /// Stable lowercase name used in logs and bench tables.
    pub fn as_str(self) -> &'static str {
        match self {
            OpKind::Leaf => "leaf",
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::Div => "div",
            OpKind::Scale => "scale",
            OpKind::AddScalar => "add_scalar",
            OpKind::AddRowVec => "add_rowvec",
            OpKind::AddChannelBias => "add_channel_bias",
            OpKind::Sigmoid => "sigmoid",
            OpKind::Tanh => "tanh",
            OpKind::Relu => "relu",
            OpKind::LeakyRelu => "leaky_relu",
            OpKind::Exp => "exp",
            OpKind::Softplus => "softplus",
            OpKind::SqrtEps => "sqrt_eps",
            OpKind::Abs => "abs",
            OpKind::Clamp => "clamp",
            OpKind::Square => "square",
            OpKind::Matmul => "matmul",
            OpKind::MatmulConst => "matmul_const",
            OpKind::Conv2d => "conv2d",
            OpKind::Reshape => "reshape",
            OpKind::Permute => "permute",
            OpKind::AvgPool2 => "avg_pool2",
            OpKind::Narrow => "narrow",
            OpKind::Concat => "concat",
            OpKind::Sum => "sum",
            OpKind::Mean => "mean",
            OpKind::L1To => "l1_to",
            OpKind::MseTo => "mse_to",
            OpKind::BceWithLogits => "bce_with_logits",
            OpKind::MatmulBiasAct => "matmul_bias_act",
            OpKind::Conv2dBias => "conv2d_bias",
            OpKind::Other => "other",
        }
    }
}

#[derive(Default, Clone, Copy)]
struct Slot {
    fwd_calls: u64,
    fwd_nanos: u64,
    bwd_calls: u64,
    bwd_nanos: u64,
    fresh_bytes: u64,
    reused_bytes: u64,
}

/// One row of the drained stats table (serializable for
/// `train_log.jsonl` and `BENCH_pr3.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpStatEntry {
    /// Op kind name ([`OpKind::as_str`]).
    pub op: String,
    /// Kernel backend the table was drained under
    /// ([`crate::backend::kind`]); `None` in logs written before
    /// backends existed.
    pub backend: Option<String>,
    /// Forward invocations.
    pub fwd_calls: u64,
    /// Nanoseconds spent in forward invocations.
    pub fwd_nanos: u64,
    /// Backward-interpreter invocations.
    pub bwd_calls: u64,
    /// Nanoseconds spent in backward invocations.
    pub bwd_nanos: u64,
    /// Pool bytes served by fresh allocation inside this op.
    pub fresh_bytes: u64,
    /// Pool bytes served by reuse inside this op.
    pub reused_bytes: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    static TABLE: RefCell<[Slot; N_KINDS]> = RefCell::new([Slot::default(); N_KINDS]);
    static CURRENT: Cell<usize> = const { Cell::new(OpKind::Other as usize) };
}

/// Globally enables or disables instrumentation.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether instrumentation is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Attributes pool traffic to the innermost active op scope. Called by
/// [`crate::arena`]; a no-op when instrumentation is disabled.
#[inline]
pub(crate) fn note_pool_bytes(fresh: u64, reused: u64) {
    if !enabled() {
        return;
    }
    let kind = CURRENT.with(|c| c.get());
    let _ = TABLE.try_with(|t| {
        let slot = &mut t.borrow_mut()[kind];
        slot.fresh_bytes += fresh;
        slot.reused_bytes += reused;
    });
}

/// RAII scope recording one op invocation; see [`fwd`] / [`bwd`].
pub struct OpScope {
    kind: usize,
    backward: bool,
    prev: usize,
    start: Instant,
}

impl Drop for OpScope {
    fn drop(&mut self) {
        let nanos = self.start.elapsed().as_nanos() as u64;
        CURRENT.with(|c| c.set(self.prev));
        let _ = TABLE.try_with(|t| {
            let slot = &mut t.borrow_mut()[self.kind];
            if self.backward {
                slot.bwd_calls += 1;
                slot.bwd_nanos += nanos;
            } else {
                slot.fwd_calls += 1;
                slot.fwd_nanos += nanos;
            }
        });
    }
}

fn scope(kind: OpKind, backward: bool) -> Option<OpScope> {
    if !enabled() {
        return None;
    }
    let kind = kind as usize;
    let prev = CURRENT.with(|c| c.replace(kind));
    Some(OpScope {
        kind,
        backward,
        prev,
        start: Instant::now(),
    })
}

/// Opens a forward-pass scope for `kind` (`None` when disabled).
#[inline]
pub fn fwd(kind: OpKind) -> Option<OpScope> {
    scope(kind, false)
}

/// Opens a backward-pass scope for `kind` (`None` when disabled).
#[inline]
pub fn bwd(kind: OpKind) -> Option<OpScope> {
    scope(kind, true)
}

const KIND_ORDER: [OpKind; N_KINDS] = [
    OpKind::Leaf,
    OpKind::Add,
    OpKind::Sub,
    OpKind::Mul,
    OpKind::Div,
    OpKind::Scale,
    OpKind::AddScalar,
    OpKind::AddRowVec,
    OpKind::AddChannelBias,
    OpKind::Sigmoid,
    OpKind::Tanh,
    OpKind::Relu,
    OpKind::LeakyRelu,
    OpKind::Exp,
    OpKind::Softplus,
    OpKind::SqrtEps,
    OpKind::Abs,
    OpKind::Clamp,
    OpKind::Square,
    OpKind::Matmul,
    OpKind::MatmulConst,
    OpKind::Conv2d,
    OpKind::Reshape,
    OpKind::Permute,
    OpKind::AvgPool2,
    OpKind::Narrow,
    OpKind::Concat,
    OpKind::Sum,
    OpKind::Mean,
    OpKind::L1To,
    OpKind::MseTo,
    OpKind::BceWithLogits,
    OpKind::MatmulBiasAct,
    OpKind::Conv2dBias,
    OpKind::Other,
];

/// Drains this thread's counters into a table of non-empty rows, in
/// fixed kind order (so serialized output is deterministic).
pub fn take_table() -> Vec<OpStatEntry> {
    TABLE
        .try_with(|t| {
            let mut table = t.borrow_mut();
            let mut out = Vec::new();
            for kind in KIND_ORDER {
                let slot = std::mem::take(&mut table[kind as usize]);
                if slot.fwd_calls == 0 && slot.bwd_calls == 0 && slot.fresh_bytes == 0 {
                    continue;
                }
                out.push(OpStatEntry {
                    op: kind.as_str().to_string(),
                    backend: Some(crate::backend::kind().name().to_string()),
                    fwd_calls: slot.fwd_calls,
                    fwd_nanos: slot.fwd_nanos,
                    bwd_calls: slot.bwd_calls,
                    bwd_nanos: slot.bwd_nanos,
                    fresh_bytes: slot.fresh_bytes,
                    reused_bytes: slot.reused_bytes,
                });
            }
            out
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_scopes_record_nothing() {
        set_enabled(false);
        take_table();
        assert!(fwd(OpKind::Matmul).is_none());
        assert!(take_table().is_empty());
    }

    #[test]
    fn scopes_count_calls_and_nest() {
        set_enabled(true);
        take_table();
        {
            let _outer = fwd(OpKind::Matmul);
            let _inner = bwd(OpKind::Add);
        }
        let table = take_table();
        set_enabled(false);
        let add = table.iter().find(|e| e.op == "add").unwrap();
        assert_eq!(add.bwd_calls, 1);
        let mm = table.iter().find(|e| e.op == "matmul").unwrap();
        assert_eq!(mm.fwd_calls, 1);
        assert_eq!(mm.bwd_calls, 0);
    }
}
