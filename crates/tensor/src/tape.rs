//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records a dynamic computation graph: every differentiable
//! op appends one node holding its result value and, for each parent, a
//! closure mapping the upstream gradient to that parent's gradient
//! contribution. [`Tape::backward`] seeds the output gradient and walks
//! nodes in reverse creation order — a valid reverse topological order
//! by construction, since an op can only consume already-created nodes.
//!
//! [`Var`] is a cheap handle (tape pointer + node index). Values are
//! stored as `Rc<Tensor>`, so capturing an operand in a backward
//! closure never copies the buffer.
//!
//! The op set is exactly what the SpectraGAN models need: arithmetic,
//! activations, matmul, conv2d, bias broadcasts, concat/narrow/reshape,
//! reductions and GAN losses. Every op has a finite-difference gradient
//! check in this module's tests.

use crate::shape::Shape;
use crate::tensor::Tensor;
use std::cell::RefCell;
use std::rc::Rc;

/// Closure mapping the upstream gradient of a node to the gradient
/// contribution for one of its parents.
type GradFn = Box<dyn Fn(&Tensor) -> Tensor>;

struct Node {
    value: Rc<Tensor>,
    /// `(parent index, gradient closure)` pairs.
    parents: Vec<(usize, GradFn)>,
}

/// A recording of a differentiable computation.
///
/// Create leaves with [`Tape::leaf`], combine them with the ops on
/// [`Var`], then call [`Tape::backward`] on a scalar output.
#[derive(Default)]
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
}

impl Tape {
    /// Creates an empty tape, wrapped for shared ownership by [`Var`]s.
    pub fn new() -> Rc<Tape> {
        Rc::new(Tape::default())
    }

    /// Registers `value` as a leaf (no parents) and returns its handle.
    pub fn leaf(self: &Rc<Self>, value: Tensor) -> Var {
        self.push(value, Vec::new())
    }

    /// Number of nodes currently recorded.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// Whether the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    fn push(self: &Rc<Self>, value: Tensor, parents: Vec<(usize, GradFn)>) -> Var {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node {
            value: Rc::new(value),
            parents,
        });
        Var {
            tape: Rc::clone(self),
            id: nodes.len() - 1,
        }
    }

    /// Runs reverse-mode differentiation from `root`, which must be a
    /// scalar (one-element) node, and returns the gradients of every
    /// node with respect to it.
    ///
    /// # Panics
    /// Panics if `root` is not scalar or belongs to another tape.
    pub fn backward(self: &Rc<Self>, root: &Var) -> Gradients {
        assert!(
            Rc::ptr_eq(self, &root.tape),
            "backward called with a Var from a different tape"
        );
        let nodes = self.nodes.borrow();
        assert_eq!(
            nodes[root.id].value.numel(),
            1,
            "backward root must be scalar, got shape {}",
            nodes[root.id].value.shape()
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; nodes.len()];
        grads[root.id] = Some(Tensor::full(nodes[root.id].value.shape().clone(), 1.0));

        for id in (0..=root.id).rev() {
            let Some(grad_out) = grads[id].take() else {
                continue;
            };
            for (parent, grad_fn) in &nodes[id].parents {
                let contrib = grad_fn(&grad_out);
                match &mut grads[*parent] {
                    Some(existing) => existing.add_assign(&contrib),
                    slot @ None => *slot = Some(contrib),
                }
            }
            grads[id] = Some(grad_out);
        }
        Gradients { grads }
    }
}

/// Gradients produced by [`Tape::backward`], indexed by [`Var`].
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the backward root with respect to `var`, or `None`
    /// if `var` did not influence the root.
    pub fn get(&self, var: &Var) -> Option<&Tensor> {
        self.grads.get(var.id).and_then(|g| g.as_ref())
    }
}

/// A handle to one node of a [`Tape`].
///
/// Cloning a `Var` clones the handle, not the tensor.
#[derive(Clone)]
pub struct Var {
    tape: Rc<Tape>,
    id: usize,
}

impl Var {
    /// The node's value (cheap `Rc` clone).
    pub fn value(&self) -> Rc<Tensor> {
        Rc::clone(&self.tape.nodes.borrow()[self.id].value)
    }

    /// Shape of the node's value.
    pub fn shape(&self) -> Shape {
        self.value().shape().clone()
    }

    /// The tape this variable belongs to.
    pub fn tape(&self) -> &Rc<Tape> {
        &self.tape
    }

    fn unary(&self, value: Tensor, grad: impl Fn(&Tensor) -> Tensor + 'static) -> Var {
        self.tape
            .push(value, vec![(self.id, Box::new(grad) as GradFn)])
    }

    fn binary(
        &self,
        other: &Var,
        value: Tensor,
        grad_self: impl Fn(&Tensor) -> Tensor + 'static,
        grad_other: impl Fn(&Tensor) -> Tensor + 'static,
    ) -> Var {
        assert!(
            Rc::ptr_eq(&self.tape, &other.tape),
            "binary op on Vars from different tapes"
        );
        self.tape.push(
            value,
            vec![
                (self.id, Box::new(grad_self) as GradFn),
                (other.id, Box::new(grad_other) as GradFn),
            ],
        )
    }

    // ------------------------------------------------------------------
    // Arithmetic
    // ------------------------------------------------------------------

    /// Elementwise sum.
    pub fn add(&self, other: &Var) -> Var {
        let v = self.value().add(&other.value());
        self.binary(other, v, |g| g.clone(), |g| g.clone())
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Var) -> Var {
        let v = self.value().sub(&other.value());
        self.binary(other, v, |g| g.clone(), |g| g.scale(-1.0))
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Var) -> Var {
        let a = self.value();
        let b = other.value();
        let v = a.mul(&b);
        let (ga, gb) = (b, a);
        self.binary(other, v, move |g| g.mul(&ga), move |g| g.mul(&gb))
    }

    /// Multiplication by a constant scalar.
    pub fn scale(&self, s: f32) -> Var {
        let v = self.value().scale(s);
        self.unary(v, move |g| g.scale(s))
    }

    /// Addition of a constant scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Var {
        let v = self.value().map(|x| x + s);
        self.unary(v, |g| g.clone())
    }

    /// Negation.
    pub fn neg(&self) -> Var {
        self.scale(-1.0)
    }

    /// Adds a row vector `bias [M]` to every row of a `[N, M]` matrix.
    pub fn add_rowvec(&self, bias: &Var) -> Var {
        let x = self.value();
        assert_eq!(x.shape().ndim(), 2, "add_rowvec lhs must be rank 2");
        let (n, m) = (x.shape().dim(0), x.shape().dim(1));
        let b = bias.value();
        assert_eq!(
            b.shape().dims(),
            &[m],
            "bias shape {} does not match row width {m}",
            b.shape()
        );
        let mut out = (*x).clone();
        for row in 0..n {
            for col in 0..m {
                out.data_mut()[row * m + col] += b.data()[col];
            }
        }
        self.binary(
            bias,
            out,
            |g| g.clone(),
            move |g| {
                let mut gb = Tensor::zeros([m]);
                for row in 0..n {
                    for col in 0..m {
                        gb.data_mut()[col] += g.data()[row * m + col];
                    }
                }
                gb
            },
        )
    }

    /// Adds a per-channel bias `[C]` to a `[N, C, H, W]` tensor.
    pub fn add_channel_bias(&self, bias: &Var) -> Var {
        let x = self.value();
        assert_eq!(x.shape().ndim(), 4, "add_channel_bias input must be rank 4");
        let (n, c, h, w) = (
            x.shape().dim(0),
            x.shape().dim(1),
            x.shape().dim(2),
            x.shape().dim(3),
        );
        let b = bias.value();
        assert_eq!(
            b.shape().dims(),
            &[c],
            "bias shape {} does not match channels {c}",
            b.shape()
        );
        let hw = h * w;
        let mut out = (*x).clone();
        for bi in 0..n {
            for ci in 0..c {
                let base = (bi * c + ci) * hw;
                let bv = b.data()[ci];
                for v in &mut out.data_mut()[base..base + hw] {
                    *v += bv;
                }
            }
        }
        self.binary(
            bias,
            out,
            |g| g.clone(),
            move |g| {
                let mut gb = Tensor::zeros([c]);
                for bi in 0..n {
                    for ci in 0..c {
                        let base = (bi * c + ci) * hw;
                        gb.data_mut()[ci] += g.data()[base..base + hw].iter().sum::<f32>();
                    }
                }
                gb
            },
        )
    }

    // ------------------------------------------------------------------
    // Activations
    // ------------------------------------------------------------------

    /// Logistic sigmoid `1 / (1 + e^{-x})`.
    pub fn sigmoid(&self) -> Var {
        let v = self.value().map(|x| 1.0 / (1.0 + (-x).exp()));
        let out = Rc::new(v.clone());
        self.unary(v, move |g| g.zip(&out, |gi, y| gi * y * (1.0 - y)))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        let v = self.value().map(f32::tanh);
        let out = Rc::new(v.clone());
        self.unary(v, move |g| g.zip(&out, |gi, y| gi * (1.0 - y * y)))
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Var {
        let x = self.value();
        let v = x.map(|v| v.max(0.0));
        self.unary(v, move |g| {
            g.zip(&x, |gi, xi| if xi > 0.0 { gi } else { 0.0 })
        })
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&self, alpha: f32) -> Var {
        let x = self.value();
        let v = x.map(|v| if v > 0.0 { v } else { alpha * v });
        self.unary(v, move |g| {
            g.zip(&x, |gi, xi| if xi > 0.0 { gi } else { alpha * gi })
        })
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Var {
        let v = self.value().map(f32::exp);
        let out = Rc::new(v.clone());
        self.unary(v, move |g| g.mul(&out))
    }

    /// Numerically-stable softplus `ln(1 + e^x)`.
    pub fn softplus(&self) -> Var {
        let x = self.value();
        let v = x.map(softplus_scalar);
        self.unary(v, move |g| g.zip(&x, |gi, xi| gi / (1.0 + (-xi).exp())))
    }

    /// Elementwise division `self / other` (no zero handling — caller
    /// guarantees the denominator is bounded away from zero).
    pub fn div(&self, other: &Var) -> Var {
        let a = self.value();
        let b = other.value();
        let v = a.zip(&b, |x, y| x / y);
        let (b2, a2, b3) = (b.clone(), a, b);
        self.binary(
            other,
            v,
            move |g| g.zip(&b2, |gi, yi| gi / yi),
            move |g| {
                g.zip(&a2, |gi, xi| gi * xi)
                    .zip(&b3, |t, yi| -t / (yi * yi))
            },
        )
    }

    /// Elementwise square root of a positive tensor, stabilized as
    /// `sqrt(x + eps)`.
    pub fn sqrt_eps(&self, eps: f32) -> Var {
        let v = self.value().map(|x| (x + eps).sqrt());
        let out = Rc::new(v.clone());
        self.unary(v, move |g| g.zip(&out, |gi, y| gi * 0.5 / y))
    }

    /// Elementwise absolute value (subgradient 0 at the kink).
    pub fn abs(&self) -> Var {
        let x = self.value();
        let v = x.map(f32::abs);
        self.unary(v, move |g| {
            g.zip(&x, |gi, xi| {
                if xi > 0.0 {
                    gi
                } else if xi < 0.0 {
                    -gi
                } else {
                    0.0
                }
            })
        })
    }

    /// Clamps every element into `[lo, hi]`; the gradient is passed
    /// through inside the interval and zeroed outside (straight-through
    /// at the boundary is not used).
    pub fn clamp(&self, lo: f32, hi: f32) -> Var {
        assert!(lo <= hi, "clamp bounds reversed");
        let x = self.value();
        let v = x.map(|e| e.clamp(lo, hi));
        self.unary(v, move |g| {
            g.zip(&x, |gi, xi| if xi > lo && xi < hi { gi } else { 0.0 })
        })
    }

    /// Elementwise square (cheaper than `mul` with itself: one parent).
    pub fn square(&self) -> Var {
        let x = self.value();
        let v = x.map(|e| e * e);
        self.unary(v, move |g| g.zip(&x, |gi, xi| 2.0 * gi * xi))
    }

    // ------------------------------------------------------------------
    // Linear algebra & convolution
    // ------------------------------------------------------------------

    /// Matrix product `[m, k] @ [k, n] → [m, n]`.
    pub fn matmul(&self, other: &Var) -> Var {
        let a = self.value();
        let b = other.value();
        let v = a.matmul(&b);
        let (a2, b2) = (Rc::clone(&a), Rc::clone(&b));
        self.binary(
            other,
            v,
            move |g| g.matmul(&b2.transpose2()),
            move |g| a2.transpose2().matmul(g),
        )
    }

    /// Matrix product with a *constant* right operand — records a single
    /// parent, so gradients never flow into `matrix`. Used for the fixed
    /// inverse-rFFT basis in the spectrum generator.
    pub fn matmul_const(&self, matrix: &Tensor) -> Var {
        let v = self.value().matmul(matrix);
        let m = matrix.clone();
        self.unary(v, move |g| g.matmul(&m.transpose2()))
    }

    /// 2-D cross-correlation (see [`Tensor::conv2d`]) with trainable
    /// input and weight, stride 1, zero padding `pad`.
    pub fn conv2d(&self, weight: &Var, pad: usize) -> Var {
        let x = self.value();
        let w = weight.value();
        let v = x.conv2d(&w, pad);
        let x_shape = x.shape().clone();
        let w_shape = w.shape().clone();
        let (x2, w2) = (Rc::clone(&x), Rc::clone(&w));
        self.binary(
            weight,
            v,
            move |g| Tensor::conv2d_grad_input(g, &w2, &x_shape, pad),
            move |g| Tensor::conv2d_grad_weight(g, &x2, &w_shape, pad),
        )
    }

    // ------------------------------------------------------------------
    // Structure
    // ------------------------------------------------------------------

    /// Reshape preserving element count.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Var {
        let shape = shape.into();
        let old = self.shape();
        let v = self.value().reshape(shape);
        self.unary(v, move |g| g.reshape(old.clone()))
    }

    /// Permutes axes (see [`Tensor::permute`]); the gradient applies
    /// the inverse permutation.
    pub fn permute(&self, perm: &[usize]) -> Var {
        let v = self.value().permute(perm);
        let mut inverse = vec![0usize; perm.len()];
        for (i, &p) in perm.iter().enumerate() {
            inverse[p] = i;
        }
        self.unary(v, move |g| g.permute(&inverse))
    }

    /// 2×2 average pooling, stride 2 (see [`Tensor::avg_pool2`]); the
    /// gradient spreads each pooled gradient over its 2×2 window.
    pub fn avg_pool2(&self) -> Var {
        let x = self.value();
        let v = x.avg_pool2();
        let in_shape = x.shape().clone();
        self.unary(v, move |g| {
            let (n, c) = (in_shape.dim(0), in_shape.dim(1));
            let (h, w) = (in_shape.dim(2), in_shape.dim(3));
            let (oh, ow) = (h / 2, w / 2);
            let mut out = Tensor::zeros(in_shape.clone());
            for b in 0..n {
                for ch in 0..c {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let gv = 0.25 * g.at(&[b, ch, oy, ox]);
                            let base = ((b * c + ch) * h + 2 * oy) * w + 2 * ox;
                            out.data_mut()[base] += gv;
                            out.data_mut()[base + 1] += gv;
                            out.data_mut()[base + w] += gv;
                            out.data_mut()[base + w + 1] += gv;
                        }
                    }
                }
            }
            out
        })
    }

    /// Contiguous slice `start..start+len` along `axis`.
    pub fn narrow(&self, axis: usize, start: usize, len: usize) -> Var {
        let x = self.value();
        let v = x.narrow(axis, start, len);
        let full = x.shape().clone();
        self.unary(v, move |g| {
            // Scatter the slice gradient back into a zero tensor.
            let mut out = Tensor::zeros(full.clone());
            let dims = full.dims();
            let outer: usize = dims[..axis].iter().product();
            let inner: usize = dims[axis + 1..].iter().product();
            for o in 0..outer {
                let dst = (o * dims[axis] + start) * inner;
                let src = o * len * inner;
                out.data_mut()[dst..dst + len * inner]
                    .copy_from_slice(&g.data()[src..src + len * inner]);
            }
            out
        })
    }

    /// Concatenates variables along `axis`.
    ///
    /// # Panics
    /// Panics on an empty list or mismatched tapes/shapes.
    pub fn concat(parts: &[Var], axis: usize) -> Var {
        assert!(!parts.is_empty(), "concat of zero Vars");
        let tape = Rc::clone(&parts[0].tape);
        let values: Vec<Rc<Tensor>> = parts.iter().map(|p| p.value()).collect();
        let refs: Vec<&Tensor> = values.iter().map(|v| v.as_ref()).collect();
        let out = Tensor::concat(&refs, axis);
        let mut parents: Vec<(usize, GradFn)> = Vec::with_capacity(parts.len());
        let mut start = 0usize;
        for (p, v) in parts.iter().zip(&values) {
            assert!(
                Rc::ptr_eq(&p.tape, &tape),
                "concat on Vars from different tapes"
            );
            let len = v.shape().dim(axis);
            let s = start;
            parents.push((
                p.id,
                Box::new(move |g: &Tensor| g.narrow(axis, s, len)) as GradFn,
            ));
            start += len;
        }
        tape.push(out, parents)
    }

    // ------------------------------------------------------------------
    // Reductions & losses
    // ------------------------------------------------------------------

    /// Sum of all elements (scalar output).
    pub fn sum(&self) -> Var {
        let x = self.value();
        let shape = x.shape().clone();
        let v = Tensor::scalar(x.sum());
        self.unary(v, move |g| Tensor::full(shape.clone(), g.item()))
    }

    /// Mean of all elements (scalar output).
    pub fn mean(&self) -> Var {
        let x = self.value();
        let n = x.numel() as f32;
        let shape = x.shape().clone();
        let v = Tensor::scalar(x.mean());
        self.unary(v, move |g| Tensor::full(shape.clone(), g.item() / n))
    }

    /// Mean absolute error against a constant target.
    pub fn l1_to(&self, target: &Tensor) -> Var {
        let x = self.value();
        assert_eq!(
            x.shape(),
            target.shape(),
            "l1_to target shape {} vs value {}",
            target.shape(),
            x.shape()
        );
        let n = x.numel() as f32;
        let v = Tensor::scalar(x.zip(target, |a, b| (a - b).abs()).mean());
        let t = target.clone();
        let x2 = Rc::clone(&x);
        self.unary(v, move |g| {
            let gi = g.item() / n;
            x2.zip(&t, |a, b| {
                if a > b {
                    gi
                } else if a < b {
                    -gi
                } else {
                    0.0
                }
            })
        })
    }

    /// Mean squared error against a constant target.
    pub fn mse_to(&self, target: &Tensor) -> Var {
        let x = self.value();
        assert_eq!(
            x.shape(),
            target.shape(),
            "mse_to target shape {} vs value {}",
            target.shape(),
            x.shape()
        );
        let n = x.numel() as f32;
        let v = Tensor::scalar(x.zip(target, |a, b| (a - b) * (a - b)).mean());
        let t = target.clone();
        let x2 = Rc::clone(&x);
        self.unary(v, move |g| {
            let gi = 2.0 * g.item() / n;
            x2.zip(&t, |a, b| gi * (a - b))
        })
    }

    /// Binary cross-entropy with logits against a constant label `y`
    /// (broadcast scalar): `mean(softplus(x) − y·x)`.
    ///
    /// This is the standard numerically-stable GAN discriminator /
    /// generator loss; `y = 1` for "real", `y = 0` for "fake".
    pub fn bce_with_logits(&self, y: f32) -> Var {
        let x = self.value();
        let n = x.numel() as f32;
        let v = Tensor::scalar(x.map(|xi| softplus_scalar(xi) - y * xi).mean());
        let x2 = Rc::clone(&x);
        self.unary(v, move |g| {
            let gi = g.item() / n;
            // d/dx [softplus(x) − y·x] = σ(x) − y.
            x2.map(|xi| gi * (1.0 / (1.0 + (-xi).exp()) - y))
        })
    }
}

/// Numerically stable `ln(1 + e^x)`.
fn softplus_scalar(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Central-difference gradient check: builds the graph with `f`,
    /// runs backward, and compares against finite differences on every
    /// input tensor.
    fn grad_check(inputs: &[Tensor], f: impl Fn(&Rc<Tape>, &[Var]) -> Var) {
        let tape = Tape::new();
        let vars: Vec<Var> = inputs.iter().map(|t| tape.leaf(t.clone())).collect();
        let out = f(&tape, &vars);
        assert_eq!(out.value().numel(), 1, "grad_check output must be scalar");
        let grads = tape.backward(&out);

        let eps = 3e-3f32;
        for (vi, input) in inputs.iter().enumerate() {
            let analytic = grads
                .get(&vars[vi])
                .cloned()
                .unwrap_or_else(|| Tensor::zeros(input.shape().clone()));
            for e in 0..input.numel() {
                let mut plus = input.clone();
                plus.data_mut()[e] += eps;
                let mut minus = input.clone();
                minus.data_mut()[e] -= eps;

                let eval = |perturbed: &Tensor| -> f32 {
                    let t2 = Tape::new();
                    let vs: Vec<Var> = inputs
                        .iter()
                        .enumerate()
                        .map(|(i, t)| {
                            t2.leaf(if i == vi {
                                perturbed.clone()
                            } else {
                                t.clone()
                            })
                        })
                        .collect();
                    f(&t2, &vs).value().item()
                };
                let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
                let a = analytic.data()[e];
                let tol = 2e-2 * numeric.abs().max(a.abs()).max(1.0);
                assert!(
                    (a - numeric).abs() < tol,
                    "input {vi} elem {e}: analytic {a} vs numeric {numeric}"
                );
            }
        }
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn backward_of_simple_expression() {
        // z = sum(a*b + a) → dz/da = b + 1, dz/db = a.
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], [2]));
        let b = tape.leaf(Tensor::from_vec(vec![3.0, -4.0], [2]));
        let z = a.mul(&b).add(&a).sum();
        assert_eq!(z.value().item(), 1.0 * 3.0 + 1.0 + 2.0 * -4.0 + 2.0);
        let g = tape.backward(&z);
        assert_eq!(g.get(&a).unwrap().data(), &[4.0, -3.0]);
        assert_eq!(g.get(&b).unwrap().data(), &[1.0, 2.0]);
    }

    #[test]
    fn grad_of_unused_leaf_is_none() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::scalar(1.0));
        let b = tape.leaf(Tensor::scalar(2.0));
        let z = a.scale(3.0).sum();
        let g = tape.backward(&z);
        assert!(g.get(&b).is_none());
        assert_eq!(g.get(&a).unwrap().item(), 3.0);
    }

    #[test]
    fn diamond_dependency_accumulates() {
        // z = sum(a + a) → dz/da = 2.
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![1.0, 1.0], [2]));
        let z = a.add(&a).sum();
        let g = tape.backward(&z);
        assert_eq!(g.get(&a).unwrap().data(), &[2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "must be scalar")]
    fn backward_rejects_non_scalar_root() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::zeros([2]));
        tape.backward(&a);
    }

    #[test]
    fn gc_arithmetic() {
        let mut r = rng();
        let a = Tensor::randn([2, 3], &mut r);
        let b = Tensor::randn([2, 3], &mut r);
        grad_check(&[a, b], |_, v| {
            v[0].mul(&v[1])
                .add(&v[0])
                .sub(&v[1].scale(0.5))
                .add_scalar(1.0)
                .mean()
        });
    }

    #[test]
    fn gc_activations() {
        let mut r = rng();
        let a = Tensor::randn([8], &mut r);
        grad_check(std::slice::from_ref(&a), |_, v| v[0].sigmoid().sum());
        grad_check(std::slice::from_ref(&a), |_, v| v[0].tanh().sum());
        grad_check(std::slice::from_ref(&a), |_, v| v[0].softplus().sum());
        grad_check(std::slice::from_ref(&a), |_, v| v[0].exp().mean());
        // Shift away from 0 where relu is non-differentiable.
        let shifted = a.map(|x| x + if x >= 0.0 { 0.5 } else { -0.5 });
        grad_check(std::slice::from_ref(&shifted), |_, v| v[0].relu().sum());
        grad_check(&[shifted], |_, v| v[0].leaky_relu(0.2).sum());
    }

    #[test]
    fn gc_matmul() {
        let mut r = rng();
        let a = Tensor::randn([3, 4], &mut r);
        let b = Tensor::randn([4, 2], &mut r);
        grad_check(&[a.clone(), b.clone()], |_, v| v[0].matmul(&v[1]).sum());
        grad_check(&[a], |_, v| v[0].matmul_const(&b).mean());
    }

    #[test]
    fn gc_conv2d() {
        let mut r = rng();
        let x = Tensor::randn([1, 2, 5, 5], &mut r);
        let w = Tensor::randn([3, 2, 3, 3], &mut r);
        for pad in [0usize, 1] {
            grad_check(&[x.clone(), w.clone()], move |_, v| {
                v[0].conv2d(&v[1], pad).mean()
            });
        }
    }

    #[test]
    fn gc_bias_broadcasts() {
        let mut r = rng();
        let x = Tensor::randn([3, 4], &mut r);
        let b = Tensor::randn([4], &mut r);
        grad_check(&[x, b], |_, v| v[0].add_rowvec(&v[1]).sum());
        let x4 = Tensor::randn([2, 3, 2, 2], &mut r);
        let c = Tensor::randn([3], &mut r);
        grad_check(&[x4, c], |_, v| v[0].add_channel_bias(&v[1]).sum());
    }

    #[test]
    fn gc_structure_ops() {
        let mut r = rng();
        let a = Tensor::randn([2, 6], &mut r);
        let b = Tensor::randn([2, 3], &mut r);
        grad_check(std::slice::from_ref(&a), |_, v| {
            v[0].reshape([3, 4]).sigmoid().sum()
        });
        grad_check(std::slice::from_ref(&a), |_, v| v[0].narrow(1, 2, 3).sum());
        grad_check(&[a, b], |_, v| {
            Var::concat(&[v[0].clone(), v[1].clone()], 1).tanh().sum()
        });
    }

    #[test]
    fn gc_elementwise_extras() {
        let mut r = rng();
        let a = Tensor::randn([6], &mut r);
        // Denominator bounded away from zero.
        let b = Tensor::randn([6], &mut r).map(|v| v.signum() * (v.abs() + 1.0));
        grad_check(&[a.clone(), b], |_, v| v[0].div(&v[1]).sum());
        let pos = a.map(|v| v.abs() + 0.5);
        grad_check(&[pos], |_, v| v[0].sqrt_eps(1e-6).sum());
        // Keep away from the |·| kink and clamp boundaries.
        let shifted = a.map(|v| if v >= 0.0 { v + 0.3 } else { v - 0.3 });
        grad_check(std::slice::from_ref(&shifted), |_, v| v[0].abs().sum());
        grad_check(std::slice::from_ref(&shifted), |_, v| {
            v[0].clamp(-0.8, 0.8).square().sum()
        });
        grad_check(&[shifted], |_, v| v[0].square().mean());
    }

    #[test]
    fn clamp_zeroes_gradient_outside_range() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![-2.0, 0.0, 2.0], [3]));
        let loss = x.clamp(-1.0, 1.0).sum();
        let g = tape.backward(&loss);
        assert_eq!(g.get(&x).unwrap().data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn gc_permute_and_pool() {
        let mut r = rng();
        let x = Tensor::randn([2, 3, 4, 4], &mut r);
        grad_check(std::slice::from_ref(&x), |_, v| {
            v[0].permute(&[0, 2, 3, 1]).sigmoid().sum()
        });
        grad_check(&[x], |_, v| v[0].avg_pool2().tanh().sum());
    }

    #[test]
    fn gc_losses() {
        let mut r = rng();
        let x = Tensor::randn([2, 5], &mut r);
        let t = Tensor::randn([2, 5], &mut r);
        grad_check(std::slice::from_ref(&x), {
            let t = t.clone();
            move |_, v| v[0].mse_to(&t)
        });
        // l1 is non-differentiable at 0 — nudge apart.
        let apart = x.zip(&t, |a, b| if (a - b).abs() < 0.1 { a + 0.3 } else { a });
        grad_check(&[apart], {
            let t = t.clone();
            move |_, v| v[0].l1_to(&t)
        });
        grad_check(std::slice::from_ref(&x), |_, v| v[0].bce_with_logits(1.0));
        grad_check(&[x], |_, v| v[0].bce_with_logits(0.0));
    }

    #[test]
    fn gc_composed_mlp() {
        // A miniature MLP forward pass, checking the whole chain.
        let mut r = rng();
        let x = Tensor::randn([2, 3], &mut r);
        let w1 = Tensor::randn([3, 4], &mut r);
        let b1 = Tensor::randn([4], &mut r);
        let w2 = Tensor::randn([4, 1], &mut r);
        grad_check(&[x, w1, b1, w2], |_, v| {
            v[0].matmul(&v[1])
                .add_rowvec(&v[2])
                .tanh()
                .matmul(&v[3])
                .bce_with_logits(1.0)
        });
    }

    #[test]
    fn bce_with_logits_matches_closed_form() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::scalar(0.0));
        // softplus(0) − 1·0 = ln 2.
        let loss = x.bce_with_logits(1.0);
        assert!((loss.value().item() - std::f32::consts::LN_2).abs() < 1e-5);
    }
}
