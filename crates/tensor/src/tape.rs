//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records a dynamic computation graph: every differentiable
//! op appends one node holding its result value and a typed
//! [`Op`] describing how the node was produced (parent indices plus the
//! scalars backward needs). [`Tape::backward`] seeds the output
//! gradient and walks nodes in reverse creation order — a valid reverse
//! topological order by construction, since an op can only consume
//! already-created nodes — dispatching each node through the single
//! backward interpreter in [`crate::ops`].
//!
//! [`Var`] is a cheap handle (tape pointer + node index). Values are
//! stored as `Rc<Tensor>`, so revisiting an operand in backward never
//! copies the buffer. Buffers themselves come from the thread-local
//! [`crate::arena`] pool; [`Tape::reset_keep_capacity`] clears the
//! node arena while *returning* every activation buffer to the pool,
//! so a hoisted tape re-runs the next step allocation-free.
//!
//! The op set is exactly what the SpectraGAN models need: arithmetic,
//! activations, matmul, conv2d, bias broadcasts, concat/narrow/reshape,
//! reductions, GAN losses — plus the fused `matmul+bias+activation` and
//! `conv2d+bias` kernels the layer stack emits. Every op has a
//! finite-difference gradient check in this module's tests.

use crate::ops::{self, Op};
use crate::shape::Shape;
use crate::stats::{self, OpKind};
use crate::tensor::Tensor;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

pub use crate::ops::FusedAct;

pub(crate) struct Node {
    value: Rc<Tensor>,
    op: Op,
}

/// A recording of a differentiable computation.
///
/// Create leaves with [`Tape::leaf`], combine them with the ops on
/// [`Var`], then call [`Tape::backward`] on a scalar output.
#[derive(Default)]
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
    /// Peak node count seen by [`Tape::reset_keep_capacity`], used to
    /// pre-size the arena on the first push after a reset.
    high_water: Cell<usize>,
}

impl Tape {
    /// Creates an empty tape, wrapped for shared ownership by [`Var`]s.
    pub fn new() -> Rc<Tape> {
        Rc::new(Tape::default())
    }

    /// Creates a tape whose node arena is pre-sized for `nodes` ops.
    pub fn with_capacity(nodes: usize) -> Rc<Tape> {
        Rc::new(Tape {
            nodes: RefCell::new(Vec::with_capacity(nodes)),
            high_water: Cell::new(nodes),
        })
    }

    /// Registers `value` as a leaf (no parents) and returns its handle.
    pub fn leaf(self: &Rc<Self>, value: Tensor) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Number of nodes currently recorded.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// Whether the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    /// Clears all nodes but keeps the node arena's capacity (sized to
    /// the peak node count seen so far), and releases every node's
    /// tensor buffer back to the [`crate::arena`] pool. Steady-state
    /// training graphs have constant shape, so a hoisted tape that is
    /// reset between steps re-records the next step without touching
    /// the allocator.
    ///
    /// Outstanding [`Var`]s from before the reset must not be used
    /// afterwards (their indices would name future nodes); the training
    /// loop drops all of them with the step scope.
    pub fn reset_keep_capacity(&self) {
        let mut nodes = self.nodes.borrow_mut();
        self.high_water.set(self.high_water.get().max(nodes.len()));
        nodes.clear();
    }

    fn push(self: &Rc<Self>, value: Tensor, op: Op) -> Var {
        let mut nodes = self.nodes.borrow_mut();
        if nodes.capacity() == 0 {
            // First push after creation or a reset on a fresh tape:
            // size the arena from the best estimate we have.
            nodes.reserve(self.high_water.get().max(64));
        }
        nodes.push(Node {
            value: Rc::new(value),
            op,
        });
        Var {
            tape: Rc::clone(self),
            id: nodes.len() - 1,
        }
    }

    /// Runs reverse-mode differentiation from `root`, which must be a
    /// scalar (one-element) node, and returns the gradients of every
    /// node with respect to it.
    ///
    /// # Panics
    /// Panics if `root` is not scalar or belongs to another tape.
    pub fn backward(self: &Rc<Self>, root: &Var) -> Gradients {
        assert!(
            Rc::ptr_eq(self, &root.tape),
            "backward called with a Var from a different tape"
        );
        let nodes = self.nodes.borrow();
        assert_eq!(
            nodes[root.id].value.numel(),
            1,
            "backward root must be scalar, got shape {}",
            nodes[root.id].value.shape()
        );
        // The values slice lets the interpreter read any parent's
        // forward value (and the node's own output) by index.
        let values: Vec<Rc<Tensor>> = nodes.iter().map(|n| Rc::clone(&n.value)).collect();
        let mut grads: Vec<Option<Tensor>> = vec![None; nodes.len()];
        grads[root.id] = Some(Tensor::full(nodes[root.id].value.shape().clone(), 1.0));

        let instrument = stats::enabled();
        for id in (0..=root.id).rev() {
            let Some(grad_out) = grads[id].take() else {
                continue;
            };
            let op = &nodes[id].op;
            if instrument {
                let _scope = stats::bwd(op.kind());
                ops::backward_node(op, id, &values, &grad_out, &mut grads);
            } else {
                ops::backward_node(op, id, &values, &grad_out, &mut grads);
            }
            grads[id] = Some(grad_out);
        }
        Gradients { grads }
    }
}

/// Gradients produced by [`Tape::backward`], indexed by [`Var`].
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the backward root with respect to `var`, or `None`
    /// if `var` did not influence the root.
    pub fn get(&self, var: &Var) -> Option<&Tensor> {
        self.grads.get(var.id).and_then(|g| g.as_ref())
    }
}

/// A handle to one node of a [`Tape`].
///
/// Cloning a `Var` clones the handle, not the tensor.
#[derive(Clone)]
pub struct Var {
    tape: Rc<Tape>,
    id: usize,
}

impl Var {
    /// The node's value (cheap `Rc` clone).
    pub fn value(&self) -> Rc<Tensor> {
        Rc::clone(&self.tape.nodes.borrow()[self.id].value)
    }

    /// Shape of the node's value.
    pub fn shape(&self) -> Shape {
        self.value().shape().clone()
    }

    /// The tape this variable belongs to.
    pub fn tape(&self) -> &Rc<Tape> {
        &self.tape
    }

    fn unary(&self, value: Tensor, op: Op) -> Var {
        self.tape.push(value, op)
    }

    fn binary(&self, other: &Var, value: Tensor, op: Op) -> Var {
        assert!(
            Rc::ptr_eq(&self.tape, &other.tape),
            "binary op on Vars from different tapes"
        );
        self.tape.push(value, op)
    }

    // ------------------------------------------------------------------
    // Arithmetic
    // ------------------------------------------------------------------

    /// Elementwise sum.
    pub fn add(&self, other: &Var) -> Var {
        let _s = stats::fwd(OpKind::Add);
        let v = self.value().add(&other.value());
        self.binary(other, v, Op::Add(self.id, other.id))
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Var) -> Var {
        let _s = stats::fwd(OpKind::Sub);
        let v = self.value().sub(&other.value());
        self.binary(other, v, Op::Sub(self.id, other.id))
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Var) -> Var {
        let _s = stats::fwd(OpKind::Mul);
        let v = self.value().mul(&other.value());
        self.binary(other, v, Op::Mul(self.id, other.id))
    }

    /// Multiplication by a constant scalar.
    pub fn scale(&self, s: f32) -> Var {
        let _t = stats::fwd(OpKind::Scale);
        let v = self.value().scale(s);
        self.unary(v, Op::Scale(self.id, s))
    }

    /// Addition of a constant scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Var {
        let _t = stats::fwd(OpKind::AddScalar);
        let v = self.value().map(|x| x + s);
        self.unary(v, Op::AddScalar(self.id))
    }

    /// Negation.
    pub fn neg(&self) -> Var {
        self.scale(-1.0)
    }

    /// Adds a row vector `bias [M]` to every row of a `[N, M]` matrix.
    pub fn add_rowvec(&self, bias: &Var) -> Var {
        let _t = stats::fwd(OpKind::AddRowVec);
        let x = self.value();
        assert_eq!(x.shape().ndim(), 2, "add_rowvec lhs must be rank 2");
        let (n, m) = (x.shape().dim(0), x.shape().dim(1));
        let b = bias.value();
        assert_eq!(
            b.shape().dims(),
            &[m],
            "bias shape {} does not match row width {m}",
            b.shape()
        );
        let mut out = (*x).clone();
        for row in 0..n {
            for col in 0..m {
                out.data_mut()[row * m + col] += b.data()[col];
            }
        }
        self.binary(
            bias,
            out,
            Op::AddRowVec {
                x: self.id,
                b: bias.id,
            },
        )
    }

    /// Adds a per-channel bias `[C]` to a `[N, C, H, W]` tensor.
    pub fn add_channel_bias(&self, bias: &Var) -> Var {
        let _t = stats::fwd(OpKind::AddChannelBias);
        let x = self.value();
        assert_eq!(x.shape().ndim(), 4, "add_channel_bias input must be rank 4");
        let (n, c, h, w) = (
            x.shape().dim(0),
            x.shape().dim(1),
            x.shape().dim(2),
            x.shape().dim(3),
        );
        let b = bias.value();
        assert_eq!(
            b.shape().dims(),
            &[c],
            "bias shape {} does not match channels {c}",
            b.shape()
        );
        let hw = h * w;
        let mut out = (*x).clone();
        for bi in 0..n {
            for ci in 0..c {
                let base = (bi * c + ci) * hw;
                let bv = b.data()[ci];
                for v in &mut out.data_mut()[base..base + hw] {
                    *v += bv;
                }
            }
        }
        self.binary(
            bias,
            out,
            Op::AddChannelBias {
                x: self.id,
                b: bias.id,
            },
        )
    }

    // ------------------------------------------------------------------
    // Activations
    // ------------------------------------------------------------------

    /// Logistic sigmoid `1 / (1 + e^{-x})`, dispatched to the active
    /// backend's elementwise kernel.
    pub fn sigmoid(&self) -> Var {
        let _t = stats::fwd(OpKind::Sigmoid);
        let mut v = self.value().map(|x| x);
        crate::backend::active().sigmoid_slice(v.data_mut());
        self.unary(v, Op::Sigmoid(self.id))
    }

    /// Hyperbolic tangent, dispatched to the active backend's
    /// elementwise kernel.
    pub fn tanh(&self) -> Var {
        let _t = stats::fwd(OpKind::Tanh);
        let mut v = self.value().map(|x| x);
        crate::backend::active().tanh_slice(v.data_mut());
        self.unary(v, Op::Tanh(self.id))
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Var {
        let _t = stats::fwd(OpKind::Relu);
        let v = self.value().map(|v| v.max(0.0));
        self.unary(v, Op::Relu(self.id))
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&self, alpha: f32) -> Var {
        let _t = stats::fwd(OpKind::LeakyRelu);
        let v = self.value().map(|v| if v > 0.0 { v } else { alpha * v });
        self.unary(v, Op::LeakyRelu(self.id, alpha))
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Var {
        let _t = stats::fwd(OpKind::Exp);
        let v = self.value().map(f32::exp);
        self.unary(v, Op::Exp(self.id))
    }

    /// Numerically-stable softplus `ln(1 + e^x)`.
    pub fn softplus(&self) -> Var {
        let _t = stats::fwd(OpKind::Softplus);
        let v = self.value().map(ops::softplus_scalar);
        self.unary(v, Op::Softplus(self.id))
    }

    /// Elementwise division `self / other` (no zero handling — caller
    /// guarantees the denominator is bounded away from zero).
    pub fn div(&self, other: &Var) -> Var {
        let _t = stats::fwd(OpKind::Div);
        let v = self.value().zip(&other.value(), |x, y| x / y);
        self.binary(other, v, Op::Div(self.id, other.id))
    }

    /// Elementwise square root of a positive tensor, stabilized as
    /// `sqrt(x + eps)`.
    pub fn sqrt_eps(&self, eps: f32) -> Var {
        let _t = stats::fwd(OpKind::SqrtEps);
        let v = self.value().map(|x| (x + eps).sqrt());
        self.unary(v, Op::SqrtEps(self.id))
    }

    /// Elementwise absolute value (subgradient 0 at the kink).
    pub fn abs(&self) -> Var {
        let _t = stats::fwd(OpKind::Abs);
        let v = self.value().map(f32::abs);
        self.unary(v, Op::Abs(self.id))
    }

    /// Clamps every element into `[lo, hi]`; the gradient is passed
    /// through inside the interval and zeroed outside (straight-through
    /// at the boundary is not used).
    pub fn clamp(&self, lo: f32, hi: f32) -> Var {
        assert!(lo <= hi, "clamp bounds reversed");
        let _t = stats::fwd(OpKind::Clamp);
        let v = self.value().map(|e| e.clamp(lo, hi));
        self.unary(v, Op::Clamp { x: self.id, lo, hi })
    }

    /// Elementwise square (cheaper than `mul` with itself: one parent).
    pub fn square(&self) -> Var {
        let _t = stats::fwd(OpKind::Square);
        let v = self.value().map(|e| e * e);
        self.unary(v, Op::Square(self.id))
    }

    // ------------------------------------------------------------------
    // Linear algebra & convolution
    // ------------------------------------------------------------------

    /// Matrix product `[m, k] @ [k, n] → [m, n]`.
    pub fn matmul(&self, other: &Var) -> Var {
        let _t = stats::fwd(OpKind::Matmul);
        let v = self.value().matmul(&other.value());
        self.binary(other, v, Op::Matmul(self.id, other.id))
    }

    /// Matrix product with a *constant* right operand — records a single
    /// parent, so gradients never flow into `matrix`. Used for the fixed
    /// inverse-rFFT basis in the spectrum generator.
    pub fn matmul_const(&self, matrix: &Tensor) -> Var {
        let _t = stats::fwd(OpKind::MatmulConst);
        let v = self.value().matmul(matrix);
        self.unary(
            v,
            Op::MatmulConst {
                x: self.id,
                m: Rc::new(matrix.clone()),
            },
        )
    }

    /// 2-D cross-correlation (see [`Tensor::conv2d`]) with trainable
    /// input and weight, stride 1, zero padding `pad`.
    pub fn conv2d(&self, weight: &Var, pad: usize) -> Var {
        let _t = stats::fwd(OpKind::Conv2d);
        let v = self.value().conv2d(&weight.value(), pad);
        self.binary(
            weight,
            v,
            Op::Conv2d {
                x: self.id,
                w: weight.id,
                pad,
            },
        )
    }

    // ------------------------------------------------------------------
    // Fused kernels
    // ------------------------------------------------------------------

    /// Fused `act(self @ w + bias)` — the linear-layer chain as a single
    /// node. Bit-equal (forward and backward) to
    /// `self.matmul(w).add_rowvec(bias)` followed by the activation;
    /// see [`crate::ops`] for why.
    pub fn matmul_bias_act(&self, w: &Var, bias: &Var, act: FusedAct) -> Var {
        assert!(
            Rc::ptr_eq(&self.tape, &w.tape) && Rc::ptr_eq(&self.tape, &bias.tape),
            "fused op on Vars from different tapes"
        );
        let _t = stats::fwd(OpKind::MatmulBiasAct);
        let v = ops::matmul_bias_act_forward(&self.value(), &w.value(), &bias.value(), act);
        self.tape.push(
            v,
            Op::MatmulBiasAct {
                a: self.id,
                w: w.id,
                b: bias.id,
                act,
            },
        )
    }

    /// Fused `conv2d(self, w, pad) + bias` — the conv-layer chain as a
    /// single node, bit-equal to `self.conv2d(w, pad)
    /// .add_channel_bias(bias)`.
    pub fn conv2d_bias(&self, w: &Var, bias: &Var, pad: usize) -> Var {
        assert!(
            Rc::ptr_eq(&self.tape, &w.tape) && Rc::ptr_eq(&self.tape, &bias.tape),
            "fused op on Vars from different tapes"
        );
        let _t = stats::fwd(OpKind::Conv2dBias);
        let v = ops::conv2d_bias_forward(&self.value(), &w.value(), &bias.value(), pad);
        self.tape.push(
            v,
            Op::Conv2dBias {
                x: self.id,
                w: w.id,
                b: bias.id,
                pad,
            },
        )
    }

    // ------------------------------------------------------------------
    // Structure
    // ------------------------------------------------------------------

    /// Reshape preserving element count.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Var {
        let _t = stats::fwd(OpKind::Reshape);
        let v = self.value().reshape(shape.into());
        self.unary(v, Op::Reshape(self.id))
    }

    /// Permutes axes (see [`Tensor::permute`]); the gradient applies
    /// the inverse permutation.
    pub fn permute(&self, perm: &[usize]) -> Var {
        let _t = stats::fwd(OpKind::Permute);
        let v = self.value().permute(perm);
        let mut inverse = vec![0usize; perm.len()];
        for (i, &p) in perm.iter().enumerate() {
            inverse[p] = i;
        }
        self.unary(
            v,
            Op::Permute {
                x: self.id,
                inverse,
            },
        )
    }

    /// 2×2 average pooling, stride 2 (see [`Tensor::avg_pool2`]); the
    /// gradient spreads each pooled gradient over its 2×2 window.
    pub fn avg_pool2(&self) -> Var {
        let _t = stats::fwd(OpKind::AvgPool2);
        let v = self.value().avg_pool2();
        self.unary(v, Op::AvgPool2(self.id))
    }

    /// Contiguous slice `start..start+len` along `axis`.
    pub fn narrow(&self, axis: usize, start: usize, len: usize) -> Var {
        let _t = stats::fwd(OpKind::Narrow);
        let v = self.value().narrow(axis, start, len);
        self.unary(
            v,
            Op::Narrow {
                x: self.id,
                axis,
                start,
            },
        )
    }

    /// Concatenates variables along `axis`.
    ///
    /// # Panics
    /// Panics on an empty list or mismatched tapes/shapes.
    pub fn concat(parts: &[Var], axis: usize) -> Var {
        assert!(!parts.is_empty(), "concat of zero Vars");
        let _t = stats::fwd(OpKind::Concat);
        let tape = Rc::clone(&parts[0].tape);
        for p in parts {
            assert!(
                Rc::ptr_eq(&p.tape, &tape),
                "concat on Vars from different tapes"
            );
        }
        let values: Vec<Rc<Tensor>> = parts.iter().map(|p| p.value()).collect();
        let refs: Vec<&Tensor> = values.iter().map(|v| v.as_ref()).collect();
        let out = Tensor::concat(&refs, axis);
        tape.push(
            out,
            Op::Concat {
                parts: parts.iter().map(|p| p.id).collect(),
                axis,
            },
        )
    }

    // ------------------------------------------------------------------
    // Reductions & losses
    // ------------------------------------------------------------------

    /// Sum of all elements (scalar output).
    pub fn sum(&self) -> Var {
        let _t = stats::fwd(OpKind::Sum);
        let v = Tensor::scalar(self.value().sum());
        self.unary(v, Op::Sum(self.id))
    }

    /// Mean of all elements (scalar output).
    pub fn mean(&self) -> Var {
        let _t = stats::fwd(OpKind::Mean);
        let v = Tensor::scalar(self.value().mean());
        self.unary(v, Op::Mean(self.id))
    }

    /// Mean absolute error against a constant target.
    pub fn l1_to(&self, target: &Tensor) -> Var {
        let _t = stats::fwd(OpKind::L1To);
        let x = self.value();
        assert_eq!(
            x.shape(),
            target.shape(),
            "l1_to target shape {} vs value {}",
            target.shape(),
            x.shape()
        );
        let v = Tensor::scalar(x.zip(target, |a, b| (a - b).abs()).mean());
        self.unary(
            v,
            Op::L1To {
                x: self.id,
                target: Rc::new(target.clone()),
            },
        )
    }

    /// Mean squared error against a constant target.
    pub fn mse_to(&self, target: &Tensor) -> Var {
        let _t = stats::fwd(OpKind::MseTo);
        let x = self.value();
        assert_eq!(
            x.shape(),
            target.shape(),
            "mse_to target shape {} vs value {}",
            target.shape(),
            x.shape()
        );
        let v = Tensor::scalar(x.zip(target, |a, b| (a - b) * (a - b)).mean());
        self.unary(
            v,
            Op::MseTo {
                x: self.id,
                target: Rc::new(target.clone()),
            },
        )
    }

    /// Binary cross-entropy with logits against a constant label `y`
    /// (broadcast scalar): `mean(softplus(x) − y·x)`.
    ///
    /// This is the standard numerically-stable GAN discriminator /
    /// generator loss; `y = 1` for "real", `y = 0` for "fake".
    pub fn bce_with_logits(&self, y: f32) -> Var {
        let _t = stats::fwd(OpKind::BceWithLogits);
        let x = self.value();
        let v = Tensor::scalar(x.map(|xi| ops::softplus_scalar(xi) - y * xi).mean());
        self.unary(v, Op::BceWithLogits { x: self.id, y })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Central-difference gradient check: builds the graph with `f`,
    /// runs backward, and compares against finite differences on every
    /// input tensor.
    fn grad_check(inputs: &[Tensor], f: impl Fn(&Rc<Tape>, &[Var]) -> Var) {
        let tape = Tape::new();
        let vars: Vec<Var> = inputs.iter().map(|t| tape.leaf(t.clone())).collect();
        let out = f(&tape, &vars);
        assert_eq!(out.value().numel(), 1, "grad_check output must be scalar");
        let grads = tape.backward(&out);

        let eps = 3e-3f32;
        for (vi, input) in inputs.iter().enumerate() {
            let analytic = grads
                .get(&vars[vi])
                .cloned()
                .unwrap_or_else(|| Tensor::zeros(input.shape().clone()));
            for e in 0..input.numel() {
                let mut plus = input.clone();
                plus.data_mut()[e] += eps;
                let mut minus = input.clone();
                minus.data_mut()[e] -= eps;

                let eval = |perturbed: &Tensor| -> f32 {
                    let t2 = Tape::new();
                    let vs: Vec<Var> = inputs
                        .iter()
                        .enumerate()
                        .map(|(i, t)| {
                            t2.leaf(if i == vi {
                                perturbed.clone()
                            } else {
                                t.clone()
                            })
                        })
                        .collect();
                    f(&t2, &vs).value().item()
                };
                let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
                let a = analytic.data()[e];
                let tol = 2e-2 * numeric.abs().max(a.abs()).max(1.0);
                assert!(
                    (a - numeric).abs() < tol,
                    "input {vi} elem {e}: analytic {a} vs numeric {numeric}"
                );
            }
        }
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn backward_of_simple_expression() {
        // z = sum(a*b + a) → dz/da = b + 1, dz/db = a.
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], [2]));
        let b = tape.leaf(Tensor::from_vec(vec![3.0, -4.0], [2]));
        let z = a.mul(&b).add(&a).sum();
        assert_eq!(z.value().item(), 1.0 * 3.0 + 1.0 + 2.0 * -4.0 + 2.0);
        let g = tape.backward(&z);
        assert_eq!(g.get(&a).unwrap().data(), &[4.0, -3.0]);
        assert_eq!(g.get(&b).unwrap().data(), &[1.0, 2.0]);
    }

    #[test]
    fn grad_of_unused_leaf_is_none() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::scalar(1.0));
        let b = tape.leaf(Tensor::scalar(2.0));
        let z = a.scale(3.0).sum();
        let g = tape.backward(&z);
        assert!(g.get(&b).is_none());
        assert_eq!(g.get(&a).unwrap().item(), 3.0);
    }

    #[test]
    fn diamond_dependency_accumulates() {
        // z = sum(a + a) → dz/da = 2.
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![1.0, 1.0], [2]));
        let z = a.add(&a).sum();
        let g = tape.backward(&z);
        assert_eq!(g.get(&a).unwrap().data(), &[2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "must be scalar")]
    fn backward_rejects_non_scalar_root() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::zeros([2]));
        tape.backward(&a);
    }

    #[test]
    fn reset_keep_capacity_clears_nodes() {
        let tape = Tape::new();
        for _ in 0..10 {
            let a = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], [2]));
            let z = a.square().sum();
            let g = tape.backward(&z);
            assert_eq!(g.get(&a).unwrap().data(), &[2.0, 4.0]);
            assert_eq!(tape.len(), 3);
            tape.reset_keep_capacity();
            assert!(tape.is_empty());
        }
    }

    #[test]
    fn gc_arithmetic() {
        let mut r = rng();
        let a = Tensor::randn([2, 3], &mut r);
        let b = Tensor::randn([2, 3], &mut r);
        grad_check(&[a, b], |_, v| {
            v[0].mul(&v[1])
                .add(&v[0])
                .sub(&v[1].scale(0.5))
                .add_scalar(1.0)
                .mean()
        });
    }

    #[test]
    fn gc_activations() {
        let mut r = rng();
        let a = Tensor::randn([8], &mut r);
        grad_check(std::slice::from_ref(&a), |_, v| v[0].sigmoid().sum());
        grad_check(std::slice::from_ref(&a), |_, v| v[0].tanh().sum());
        grad_check(std::slice::from_ref(&a), |_, v| v[0].softplus().sum());
        grad_check(std::slice::from_ref(&a), |_, v| v[0].exp().mean());
        // Shift away from 0 where relu is non-differentiable.
        let shifted = a.map(|x| x + if x >= 0.0 { 0.5 } else { -0.5 });
        grad_check(std::slice::from_ref(&shifted), |_, v| v[0].relu().sum());
        grad_check(&[shifted], |_, v| v[0].leaky_relu(0.2).sum());
    }

    #[test]
    fn gc_matmul() {
        let mut r = rng();
        let a = Tensor::randn([3, 4], &mut r);
        let b = Tensor::randn([4, 2], &mut r);
        grad_check(&[a.clone(), b.clone()], |_, v| v[0].matmul(&v[1]).sum());
        grad_check(&[a], |_, v| v[0].matmul_const(&b).mean());
    }

    #[test]
    fn gc_conv2d() {
        let mut r = rng();
        let x = Tensor::randn([1, 2, 5, 5], &mut r);
        let w = Tensor::randn([3, 2, 3, 3], &mut r);
        for pad in [0usize, 1] {
            grad_check(&[x.clone(), w.clone()], move |_, v| {
                v[0].conv2d(&v[1], pad).mean()
            });
        }
    }

    #[test]
    fn gc_bias_broadcasts() {
        let mut r = rng();
        let x = Tensor::randn([3, 4], &mut r);
        let b = Tensor::randn([4], &mut r);
        grad_check(&[x, b], |_, v| v[0].add_rowvec(&v[1]).sum());
        let x4 = Tensor::randn([2, 3, 2, 2], &mut r);
        let c = Tensor::randn([3], &mut r);
        grad_check(&[x4, c], |_, v| v[0].add_channel_bias(&v[1]).sum());
    }

    #[test]
    fn gc_structure_ops() {
        let mut r = rng();
        let a = Tensor::randn([2, 6], &mut r);
        let b = Tensor::randn([2, 3], &mut r);
        grad_check(std::slice::from_ref(&a), |_, v| {
            v[0].reshape([3, 4]).sigmoid().sum()
        });
        grad_check(std::slice::from_ref(&a), |_, v| v[0].narrow(1, 2, 3).sum());
        grad_check(&[a, b], |_, v| {
            Var::concat(&[v[0].clone(), v[1].clone()], 1).tanh().sum()
        });
    }

    #[test]
    fn gc_elementwise_extras() {
        let mut r = rng();
        let a = Tensor::randn([6], &mut r);
        // Denominator bounded away from zero.
        let b = Tensor::randn([6], &mut r).map(|v| v.signum() * (v.abs() + 1.0));
        grad_check(&[a.clone(), b], |_, v| v[0].div(&v[1]).sum());
        let pos = a.map(|v| v.abs() + 0.5);
        grad_check(&[pos], |_, v| v[0].sqrt_eps(1e-6).sum());
        // Keep away from the |·| kink and clamp boundaries.
        let shifted = a.map(|v| if v >= 0.0 { v + 0.3 } else { v - 0.3 });
        grad_check(std::slice::from_ref(&shifted), |_, v| v[0].abs().sum());
        grad_check(std::slice::from_ref(&shifted), |_, v| {
            v[0].clamp(-0.8, 0.8).square().sum()
        });
        grad_check(&[shifted], |_, v| v[0].square().mean());
    }

    #[test]
    fn clamp_zeroes_gradient_outside_range() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![-2.0, 0.0, 2.0], [3]));
        let loss = x.clamp(-1.0, 1.0).sum();
        let g = tape.backward(&loss);
        assert_eq!(g.get(&x).unwrap().data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn gc_permute_and_pool() {
        let mut r = rng();
        let x = Tensor::randn([2, 3, 4, 4], &mut r);
        grad_check(std::slice::from_ref(&x), |_, v| {
            v[0].permute(&[0, 2, 3, 1]).sigmoid().sum()
        });
        grad_check(&[x], |_, v| v[0].avg_pool2().tanh().sum());
    }

    #[test]
    fn gc_losses() {
        let mut r = rng();
        let x = Tensor::randn([2, 5], &mut r);
        let t = Tensor::randn([2, 5], &mut r);
        grad_check(std::slice::from_ref(&x), {
            let t = t.clone();
            move |_, v| v[0].mse_to(&t)
        });
        // l1 is non-differentiable at 0 — nudge apart.
        let apart = x.zip(&t, |a, b| if (a - b).abs() < 0.1 { a + 0.3 } else { a });
        grad_check(&[apart], {
            let t = t.clone();
            move |_, v| v[0].l1_to(&t)
        });
        grad_check(std::slice::from_ref(&x), |_, v| v[0].bce_with_logits(1.0));
        grad_check(&[x], |_, v| v[0].bce_with_logits(0.0));
    }

    #[test]
    fn gc_composed_mlp() {
        // A miniature MLP forward pass, checking the whole chain.
        let mut r = rng();
        let x = Tensor::randn([2, 3], &mut r);
        let w1 = Tensor::randn([3, 4], &mut r);
        let b1 = Tensor::randn([4], &mut r);
        let w2 = Tensor::randn([4, 1], &mut r);
        grad_check(&[x, w1, b1, w2], |_, v| {
            v[0].matmul(&v[1])
                .add_rowvec(&v[2])
                .tanh()
                .matmul(&v[3])
                .bce_with_logits(1.0)
        });
    }

    #[test]
    fn gc_fused_matmul_bias_act() {
        let mut r = rng();
        // Shift inputs away from relu kinks (as the unfused checks do).
        let x = Tensor::randn([3, 4], &mut r).map(|v| v + v.signum() * 0.2);
        let w = Tensor::randn([4, 5], &mut r);
        let b = Tensor::randn([5], &mut r);
        for act in [
            FusedAct::Identity,
            FusedAct::Sigmoid,
            FusedAct::Tanh,
            FusedAct::Relu,
            FusedAct::LeakyRelu(0.2),
        ] {
            grad_check(&[x.clone(), w.clone(), b.clone()], move |_, v| {
                v[0].matmul_bias_act(&v[1], &v[2], act).mean()
            });
        }
    }

    #[test]
    fn gc_fused_conv2d_bias() {
        let mut r = rng();
        let x = Tensor::randn([1, 2, 5, 5], &mut r);
        let w = Tensor::randn([3, 2, 3, 3], &mut r);
        let b = Tensor::randn([3], &mut r);
        for pad in [0usize, 1] {
            grad_check(&[x.clone(), w.clone(), b.clone()], move |_, v| {
                v[0].conv2d_bias(&v[1], &v[2], pad).mean()
            });
        }
    }

    /// The fused kernels must be **bitwise** equal to their unfused
    /// compositions, forward and backward — this is what lets the layer
    /// stack switch to them without perturbing the golden fixtures.
    #[test]
    fn fused_matches_unfused_bitwise() {
        let mut r = rng();
        let x = Tensor::randn([4, 6], &mut r);
        let w = Tensor::randn([6, 3], &mut r);
        let b = Tensor::randn([3], &mut r);
        for act in [
            FusedAct::Identity,
            FusedAct::Sigmoid,
            FusedAct::Tanh,
            FusedAct::Relu,
            FusedAct::LeakyRelu(0.2),
        ] {
            let run = |fused: bool| -> Vec<u32> {
                let tape = Tape::new();
                let (xv, wv, bv) = (
                    tape.leaf(x.clone()),
                    tape.leaf(w.clone()),
                    tape.leaf(b.clone()),
                );
                let y = if fused {
                    xv.matmul_bias_act(&wv, &bv, act)
                } else {
                    let pre = xv.matmul(&wv).add_rowvec(&bv);
                    match act {
                        FusedAct::Identity => pre,
                        FusedAct::Sigmoid => pre.sigmoid(),
                        FusedAct::Tanh => pre.tanh(),
                        FusedAct::Relu => pre.relu(),
                        FusedAct::LeakyRelu(a) => pre.leaky_relu(a),
                    }
                };
                let loss = y.bce_with_logits(1.0);
                let grads = tape.backward(&loss);
                y.value()
                    .data()
                    .iter()
                    .chain(grads.get(&xv).unwrap().data())
                    .chain(grads.get(&wv).unwrap().data())
                    .chain(grads.get(&bv).unwrap().data())
                    .map(|v| v.to_bits())
                    .collect()
            };
            assert_eq!(run(true), run(false), "act {act:?} diverges");
        }

        // conv2d + bias.
        let x4 = Tensor::randn([2, 2, 6, 6], &mut r);
        let w4 = Tensor::randn([3, 2, 3, 3], &mut r);
        let b4 = Tensor::randn([3], &mut r);
        for pad in [0usize, 1] {
            let run = |fused: bool| -> Vec<u32> {
                let tape = Tape::new();
                let (xv, wv, bv) = (
                    tape.leaf(x4.clone()),
                    tape.leaf(w4.clone()),
                    tape.leaf(b4.clone()),
                );
                let y = if fused {
                    xv.conv2d_bias(&wv, &bv, pad)
                } else {
                    xv.conv2d(&wv, pad).add_channel_bias(&bv)
                };
                let loss = y.mean();
                let grads = tape.backward(&loss);
                y.value()
                    .data()
                    .iter()
                    .chain(grads.get(&xv).unwrap().data())
                    .chain(grads.get(&wv).unwrap().data())
                    .chain(grads.get(&bv).unwrap().data())
                    .map(|v| v.to_bits())
                    .collect()
            };
            assert_eq!(run(true), run(false), "pad {pad} diverges");
        }
    }

    #[test]
    fn bce_with_logits_matches_closed_form() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::scalar(0.0));
        // softplus(0) − 1·0 = ln 2.
        let loss = x.bce_with_logits(1.0);
        assert!((loss.value().item() - std::f32::consts::LN_2).abs() < 1e-5);
    }
}
