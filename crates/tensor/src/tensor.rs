//! The raw dense tensor type and its (non-differentiable) numerics.
//!
//! [`Tensor`] is a contiguous, row-major `f32` buffer plus a [`Shape`].
//! The differentiable layer ([`crate::tape`]) builds on these routines:
//! the backward interpreter ultimately calls plain `Tensor` math, so the
//! convolution/matmul gradients live here too ([`Tensor::conv2d`],
//! [`Tensor::conv2d_grad_input`], [`Tensor::conv2d_grad_weight`]).
//!
//! Buffers come from the thread-local [`crate::arena`] pool: every
//! constructor asks the arena for storage and `Drop` returns it, so
//! shapes that recur step to step (all of training) are served without
//! touching the allocator.

use crate::arena;
use crate::shape::Shape;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major `f32` tensor.
#[derive(PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: arena::clone_buf(&self.data),
        }
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        arena::recycle(std::mem::take(&mut self.data));
    }
}

impl Tensor {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Creates a tensor from a flat buffer and shape.
    ///
    /// # Panics
    /// Panics if `data.len() != shape.numel()`.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "buffer of {} elements cannot have shape {shape}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// All-zeros tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: arena::take_zeroed(n),
        }
    }

    /// All-ones tensor.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Tensor filled with a constant.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: arena::take_filled(n, value),
        }
    }

    /// A scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::new(&[]),
            data: arena::take_filled(1, value),
        }
    }

    /// Standard-normal random tensor (Box–Muller over the supplied RNG,
    /// so any `rand::Rng` works without distribution adapters).
    pub fn randn(shape: impl Into<Shape>, rng: &mut impl Rng) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        let mut data = arena::take(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos());
            if data.len() < n {
                data.push(r * theta.sin());
            }
        }
        Tensor { shape, data }
    }

    /// Uniform random tensor in `[lo, hi)`.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut impl Rng) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        let mut data = arena::take(n);
        data.extend((0..n).map(|_| rng.gen_range(lo..hi)));
        Tensor { shape, data }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total element count.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the flat buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat buffer.
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// Element at a multi-index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element at a multi-index.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// The single value of a rank-0 or one-element tensor.
    ///
    /// # Panics
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() on tensor of shape {}", self.shape);
        self.data[0]
    }

    /// Returns a reshaped copy sharing no storage; element count must
    /// be preserved.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            self.numel(),
            shape.numel(),
            "cannot reshape {} into {shape}",
            self.shape
        );
        Tensor {
            shape,
            data: arena::clone_buf(&self.data),
        }
    }

    // ------------------------------------------------------------------
    // Elementwise
    // ------------------------------------------------------------------

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut data = arena::take(self.data.len());
        data.extend(self.data.iter().map(|&v| f(v)));
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Elementwise combination of two same-shape tensors.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "elementwise op on mismatched shapes {} vs {}",
            self.shape, other.shape
        );
        let mut data = arena::take(self.data.len());
        data.extend(self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)));
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// `self + other` elementwise.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// `self - other` elementwise.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// `self * other` elementwise (Hadamard product).
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// `self * s` for a scalar `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// In-place accumulation `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "add_assign on mismatched shapes {} vs {}",
            self.shape, other.shape
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scaled accumulation `self += s * other` (axpy).
    pub fn axpy(&mut self, s: f32, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "axpy on mismatched shapes {} vs {}",
            self.shape, other.shape
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element.
    ///
    /// # Panics
    /// Panics on an empty tensor.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Matrix product of two rank-2 tensors: `[m, k] @ [k, n] → [m, n]`,
    /// dispatched to the active [`crate::backend`].
    ///
    /// # Panics
    /// Panics unless both operands are rank 2 with matching inner dims.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        matmul_check(self, other);
        crate::backend::active().matmul(self, other)
    }

    /// `self @ otherᵀ` for rank-2 tensors: `[m, k] @ [n, k]ᵀ → [m, n]`.
    ///
    /// Semantically identical to `self.matmul(&other.transpose2())`;
    /// backends may skip materializing the transpose.
    ///
    /// # Panics
    /// Panics unless both operands are rank 2 with matching inner dims.
    pub fn matmul_bt(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.shape.ndim(),
            2,
            "matmul_bt lhs must be rank 2, got {}",
            self.shape
        );
        assert_eq!(
            other.shape.ndim(),
            2,
            "matmul_bt rhs must be rank 2, got {}",
            other.shape
        );
        assert_eq!(
            self.shape.dim(1),
            other.shape.dim(1),
            "matmul_bt inner dims differ: {} vs {}ᵀ",
            self.shape,
            other.shape
        );
        crate::backend::active().matmul_bt(self, other)
    }

    /// `selfᵀ @ other` for rank-2 tensors: `[m, k]ᵀ @ [m, n] → [k, n]`.
    ///
    /// Semantically identical to `self.transpose2().matmul(other)`;
    /// backends may skip materializing the transpose.
    ///
    /// # Panics
    /// Panics unless both operands are rank 2 with matching inner dims.
    pub fn matmul_tb(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.shape.ndim(),
            2,
            "matmul_tb lhs must be rank 2, got {}",
            self.shape
        );
        assert_eq!(
            other.shape.ndim(),
            2,
            "matmul_tb rhs must be rank 2, got {}",
            other.shape
        );
        assert_eq!(
            self.shape.dim(0),
            other.shape.dim(0),
            "matmul_tb inner dims differ: {}ᵀ vs {}",
            self.shape,
            other.shape
        );
        crate::backend::active().matmul_tb(self, other)
    }

    /// Transpose of a rank-2 tensor.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(
            self.shape.ndim(),
            2,
            "transpose2 needs rank 2, got {}",
            self.shape
        );
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = arena::take_zeroed(m * n);
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(out, [n, m])
    }

    // ------------------------------------------------------------------
    // 2-D convolution (NCHW, stride 1, symmetric zero padding)
    // ------------------------------------------------------------------

    /// Cross-correlation of `input [N, Cin, H, W]` with
    /// `weight [Cout, Cin, KH, KW]`, stride 1, zero padding `pad` on all
    /// sides. Output is `[N, Cout, H + 2·pad − KH + 1, W + 2·pad − KW + 1]`.
    ///
    /// Dispatched to the active [`crate::backend`]; each backend is
    /// bit-identical to itself at every thread count.
    ///
    /// # Panics
    /// Panics on rank/channel mismatches, zero-extent kernels, or
    /// kernels larger than the padded input.
    pub fn conv2d(&self, weight: &Tensor, pad: usize) -> Tensor {
        crate::backend::active().conv2d(self, weight, pad)
    }

    /// Gradient of [`Tensor::conv2d`] with respect to the input, given
    /// the upstream gradient `grad_out [N, Cout, OH, OW]`. Dispatched
    /// to the active [`crate::backend`].
    pub fn conv2d_grad_input(
        grad_out: &Tensor,
        weight: &Tensor,
        input_shape: &Shape,
        pad: usize,
    ) -> Tensor {
        crate::backend::active().conv2d_grad_input(grad_out, weight, input_shape, pad)
    }

    /// Gradient of [`Tensor::conv2d`] with respect to the weight.
    /// Dispatched to the active [`crate::backend`].
    pub fn conv2d_grad_weight(
        grad_out: &Tensor,
        input: &Tensor,
        weight_shape: &Shape,
        pad: usize,
    ) -> Tensor {
        crate::backend::active().conv2d_grad_weight(grad_out, input, weight_shape, pad)
    }
    // ------------------------------------------------------------------
    // Structural ops
    // ------------------------------------------------------------------

    /// Copies a contiguous range `start..start+len` along `axis`.
    ///
    /// # Panics
    /// Panics if `axis` or the range is out of bounds.
    pub fn narrow(&self, axis: usize, start: usize, len: usize) -> Tensor {
        let dims = self.shape.dims();
        assert!(
            axis < dims.len(),
            "narrow axis {axis} out of range for {}",
            self.shape
        );
        assert!(
            start + len <= dims[axis],
            "narrow range {start}..{} exceeds dim {} of {}",
            start + len,
            dims[axis],
            self.shape
        );
        let outer: usize = dims[..axis].iter().product();
        let inner: usize = dims[axis + 1..].iter().product();
        let mut out_dims = dims.to_vec();
        out_dims[axis] = len;
        let mut out = arena::take(outer * len * inner);
        for o in 0..outer {
            let base = (o * dims[axis] + start) * inner;
            out.extend_from_slice(&self.data[base..base + len * inner]);
        }
        Tensor::from_vec(out, out_dims)
    }

    /// Permutes axes: `perm[i]` is the source axis that becomes output
    /// axis `i` (e.g. `[0, 2, 3, 1]` turns NCHW into NHWC).
    ///
    /// # Panics
    /// Panics unless `perm` is a permutation of `0..ndim`.
    pub fn permute(&self, perm: &[usize]) -> Tensor {
        let dims = self.shape.dims();
        let nd = dims.len();
        assert_eq!(perm.len(), nd, "permute rank mismatch");
        let mut seen = vec![false; nd];
        for &p in perm {
            assert!(p < nd && !seen[p], "permute {perm:?} is not a permutation");
            seen[p] = true;
        }
        let out_dims: Vec<usize> = perm.iter().map(|&p| dims[p]).collect();
        let in_strides = self.shape.strides();
        let out_shape = Shape::new(&out_dims);
        let out_strides = out_shape.strides();
        let mut out = arena::take_zeroed(self.numel());
        // Walk output positions in order, mapping back to input offsets.
        let mut idx = vec![0usize; nd];
        for (o, slot) in out.iter_mut().enumerate() {
            let mut rem = o;
            let mut src = 0usize;
            for d in 0..nd {
                idx[d] = rem / out_strides[d];
                rem %= out_strides[d];
                src += idx[d] * in_strides[perm[d]];
            }
            *slot = self.data[src];
        }
        Tensor {
            shape: out_shape,
            data: out,
        }
    }

    /// 2×2 average pooling with stride 2 on an `[N, C, H, W]` tensor
    /// (`H`, `W` must be even).
    pub fn avg_pool2(&self) -> Tensor {
        let (n, c, h, w) = dims4(self, "avg_pool2 input");
        assert!(
            h % 2 == 0 && w % 2 == 0,
            "avg_pool2 needs even spatial dims, got {h}x{w}"
        );
        let (oh, ow) = (h / 2, w / 2);
        let mut out = Tensor::zeros([n, c, oh, ow]);
        for b in 0..n {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let base = ((b * c + ch) * h + 2 * oy) * w + 2 * ox;
                        let s = self.data[base]
                            + self.data[base + 1]
                            + self.data[base + w]
                            + self.data[base + w + 1];
                        *out.at_mut(&[b, ch, oy, ox]) = 0.25 * s;
                    }
                }
            }
        }
        out
    }

    /// Concatenates tensors along `axis`; all other dims must match.
    ///
    /// # Panics
    /// Panics on an empty list, rank mismatch, or non-`axis` dim mismatch.
    pub fn concat(parts: &[&Tensor], axis: usize) -> Tensor {
        assert!(!parts.is_empty(), "concat of zero tensors");
        let first = parts[0].shape.dims();
        assert!(axis < first.len(), "concat axis {axis} out of range");
        let mut axis_total = 0;
        for p in parts {
            let d = p.shape.dims();
            assert_eq!(d.len(), first.len(), "concat rank mismatch");
            for (i, (&a, &b)) in d.iter().zip(first).enumerate() {
                assert!(i == axis || a == b, "concat dim {i} mismatch: {a} vs {b}");
            }
            axis_total += d[axis];
        }
        let outer: usize = first[..axis].iter().product();
        let inner: usize = first[axis + 1..].iter().product();
        let mut out_dims = first.to_vec();
        out_dims[axis] = axis_total;
        let mut out = arena::take(outer * axis_total * inner);
        for o in 0..outer {
            for p in parts {
                let len = p.shape.dims()[axis];
                let base = o * len * inner;
                out.extend_from_slice(&p.data[base..base + len * inner]);
            }
        }
        Tensor::from_vec(out, out_dims)
    }
}

/// Validates the operands of a plain matrix product: both rank 2 with
/// matching inner dims. Shared by [`Tensor::matmul`] and the fused
/// matmul entry points in [`crate::ops`].
pub(crate) fn matmul_check(a: &Tensor, b: &Tensor) {
    assert_eq!(
        a.shape().ndim(),
        2,
        "matmul lhs must be rank 2, got {}",
        a.shape()
    );
    assert_eq!(
        b.shape().ndim(),
        2,
        "matmul rhs must be rank 2, got {}",
        b.shape()
    );
    assert_eq!(
        a.shape().dim(1),
        b.shape().dim(0),
        "matmul inner dims differ: {} vs {}",
        a.shape(),
        b.shape()
    );
}

/// Unpacks a rank-4 shape, with a contextual panic message.
fn dims4(t: &Tensor, what: &str) -> (usize, usize, usize, usize) {
    assert_eq!(
        t.shape().ndim(),
        4,
        "{what} must be rank 4, got {}",
        t.shape()
    );
    (
        t.shape().dim(0),
        t.shape().dim(1),
        t.shape().dim(2),
        t.shape().dim(3),
    )
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.numel() <= 16 {
            write!(f, "{:?}", self.data)
        } else {
            write!(
                f,
                "[{:.4}, {:.4}, … ; mean {:.4}]",
                self.data[0],
                self.data[1],
                self.mean()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructors_have_expected_contents() {
        assert!(Tensor::zeros([2, 2]).data().iter().all(|&v| v == 0.0));
        assert!(Tensor::ones([3]).data().iter().all(|&v| v == 1.0));
        assert_eq!(Tensor::scalar(2.5).item(), 2.5);
        assert_eq!(Tensor::full([2], -1.0).data(), &[-1.0, -1.0]);
    }

    #[test]
    #[should_panic(expected = "cannot have shape")]
    fn from_vec_checks_length() {
        Tensor::from_vec(vec![1.0; 5], [2, 3]);
    }

    #[test]
    fn randn_is_roughly_standard_normal() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn([10_000], &mut rng);
        assert!(t.mean().abs() < 0.05, "mean {}", t.mean());
        let var = t.map(|v| v * v).mean() - t.mean().powi(2);
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], [3]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
        let mut c = a.clone();
        c.axpy(0.5, &b);
        assert_eq!(c.data(), &[3.0, 4.5, 6.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.0], [2, 2]);
        assert_eq!(a.sum(), 2.0);
        assert_eq!(a.mean(), 0.5);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.min(), -2.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        // [[1,2],[3,4]] @ [[5,6],[7,8]] = [[19,22],[43,50]]
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], [2, 2]);
        assert_eq!(a.matmul(&b).data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::randn([3, 3], &mut rng);
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0], [3, 3]);
        let prod = a.matmul(&eye);
        for (x, y) in prod.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Tensor::randn([4, 7], &mut rng);
        assert_eq!(a.transpose2().transpose2(), a);
        assert_eq!(a.transpose2().shape().dims(), &[7, 4]);
    }

    #[test]
    fn conv2d_identity_kernel() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn([1, 1, 5, 5], &mut rng);
        let w = Tensor::from_vec(vec![1.0], [1, 1, 1, 1]);
        let y = x.conv2d(&w, 0);
        assert_eq!(y.shape().dims(), &[1, 1, 5, 5]);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv2d_box_filter_sums_neighbourhood() {
        let x = Tensor::ones([1, 1, 4, 4]);
        let w = Tensor::ones([1, 1, 3, 3]);
        let y = x.conv2d(&w, 1); // same padding
        assert_eq!(y.shape().dims(), &[1, 1, 4, 4]);
        // Interior pixels see the full 3×3 window; corners see 2×2.
        assert_eq!(y.at(&[0, 0, 1, 1]), 9.0);
        assert_eq!(y.at(&[0, 0, 0, 0]), 4.0);
        assert_eq!(y.at(&[0, 0, 0, 1]), 6.0);
    }

    #[test]
    fn conv2d_multi_channel_shapes() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = Tensor::randn([2, 3, 8, 8], &mut rng);
        let w = Tensor::randn([5, 3, 3, 3], &mut rng);
        let y = x.conv2d(&w, 1);
        assert_eq!(y.shape().dims(), &[2, 5, 8, 8]);
        let y_valid = x.conv2d(&w, 0);
        assert_eq!(y_valid.shape().dims(), &[2, 5, 6, 6]);
    }

    /// The convolution gradients must satisfy the adjoint identity
    /// `⟨conv(x, w), g⟩ = ⟨x, grad_input(g, w)⟩ = ⟨w, grad_weight(g, x)⟩`.
    #[test]
    fn conv2d_gradients_satisfy_adjoint_identity() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::randn([2, 3, 6, 6], &mut rng);
        let w = Tensor::randn([4, 3, 3, 3], &mut rng);
        for pad in [0usize, 1] {
            let y = x.conv2d(&w, pad);
            let g = Tensor::randn(y.shape().clone(), &mut rng);
            let lhs: f32 = y.data().iter().zip(g.data()).map(|(a, b)| a * b).sum();
            let gi = Tensor::conv2d_grad_input(&g, &w, x.shape(), pad);
            let rhs_x: f32 = x.data().iter().zip(gi.data()).map(|(a, b)| a * b).sum();
            let gw = Tensor::conv2d_grad_weight(&g, &x, w.shape(), pad);
            let rhs_w: f32 = w.data().iter().zip(gw.data()).map(|(a, b)| a * b).sum();
            assert!(
                (lhs - rhs_x).abs() < 1e-2 * lhs.abs().max(1.0),
                "pad {pad}: {lhs} vs {rhs_x}"
            );
            assert!(
                (lhs - rhs_w).abs() < 1e-2 * lhs.abs().max(1.0),
                "pad {pad}: {lhs} vs {rhs_w}"
            );
        }
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), [2, 3]);
        let b = a.reshape([3, 2]);
        assert_eq!(b.data(), a.data());
        assert_eq!(b.shape().dims(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_checks_numel() {
        Tensor::zeros([2, 3]).reshape([4, 2]);
    }

    #[test]
    fn narrow_extracts_rows_and_cols() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32).collect(), [3, 4]);
        let rows = a.narrow(0, 1, 2);
        assert_eq!(rows.shape().dims(), &[2, 4]);
        assert_eq!(rows.data(), &[4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0]);
        let cols = a.narrow(1, 1, 2);
        assert_eq!(cols.shape().dims(), &[3, 2]);
        assert_eq!(cols.data(), &[1.0, 2.0, 5.0, 6.0, 9.0, 10.0]);
    }

    #[test]
    fn concat_inverts_narrow() {
        let a = Tensor::from_vec((0..24).map(|i| i as f32).collect(), [2, 3, 4]);
        for axis in 0..3 {
            let d = a.shape().dim(axis);
            let first = a.narrow(axis, 0, 1);
            let rest = a.narrow(axis, 1, d - 1);
            let back = Tensor::concat(&[&first, &rest], axis);
            assert_eq!(back, a, "axis {axis}");
        }
    }

    #[test]
    fn permute_nchw_to_nhwc_roundtrip() {
        let mut rng = StdRng::seed_from_u64(9);
        let x = Tensor::randn([2, 3, 4, 5], &mut rng);
        let p = x.permute(&[0, 2, 3, 1]);
        assert_eq!(p.shape().dims(), &[2, 4, 5, 3]);
        assert_eq!(p.at(&[1, 2, 3, 0]), x.at(&[1, 0, 2, 3]));
        let back = p.permute(&[0, 3, 1, 2]);
        assert_eq!(back, x);
    }

    #[test]
    fn permute_transpose_matches_transpose2() {
        let mut rng = StdRng::seed_from_u64(10);
        let x = Tensor::randn([3, 7], &mut rng);
        assert_eq!(x.permute(&[1, 0]), x.transpose2());
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permute_rejects_duplicates() {
        Tensor::zeros([2, 3]).permute(&[0, 0]);
    }

    #[test]
    fn avg_pool2_averages_blocks() {
        let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), [1, 1, 4, 4]);
        let y = x.avg_pool2();
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        // Block (0,0) = {0,1,4,5} → 2.5.
        assert_eq!(y.at(&[0, 0, 0, 0]), 2.5);
        assert_eq!(y.at(&[0, 0, 1, 1]), 12.5);
    }

    #[test]
    #[should_panic(expected = "dim 1 mismatch")]
    fn concat_checks_other_dims() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([2, 4]);
        Tensor::concat(&[&a, &b], 0);
    }
}
