//! Backend parity suite: the Simd backend must agree with the Scalar
//! reference on every dispatched op family to floating-point
//! reassociation tolerance (≤ 1e-5 relative), and each backend must be
//! bit-identical to itself at every thread count.
//!
//! Also home of the regression tests for the PR 6 kernel bugfixes:
//! non-finite inputs must surface as NaN in the conv gradients (the old
//! `g == 0.0` skip silently swallowed them), and zero-size kernels must
//! fail with the documented shape error rather than an arithmetic
//! underflow.

use proptest::prelude::*;
use spectragan_tensor::{pool, set_backend, BackendKind, FusedAct, Shape, Tape, Tensor};

/// `set_backend`/`set_threads` are process-global; serialize every test
/// that flips them (same discipline as the determinism suites).
static BACKEND_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` under the given backend, restoring the default after.
fn with_backend<T>(kind: BackendKind, f: impl FnOnce() -> T) -> T {
    set_backend(Some(kind));
    let out = f();
    set_backend(None);
    out
}

/// Relative-tolerance comparison between the two backends' outputs.
fn assert_close(scalar: &Tensor, simd: &Tensor, what: &str) {
    assert_eq!(scalar.shape(), simd.shape(), "{what}: shape mismatch");
    for (i, (&a, &b)) in scalar.data().iter().zip(simd.data()).enumerate() {
        let tol = 1e-5 * a.abs().max(b.abs()).max(1.0);
        assert!(
            (a - b).abs() <= tol,
            "{what}: element {i} diverges: scalar {a} vs simd {b}"
        );
    }
}

fn randn(shape: impl Into<Shape>, seed: u64) -> Tensor {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Tensor::randn(shape, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// matmul parity across random rectangular shapes.
    #[test]
    fn matmul_parity(m in 1usize..10, k in 1usize..10, n in 1usize..10, seed in 0u64..1000) {
        let _g = lock();
        let a = randn([m, k], seed);
        let b = randn([k, n], seed ^ 0xabcd);
        let ys = with_backend(BackendKind::Scalar, || a.matmul(&b));
        let yv = with_backend(BackendKind::Simd, || a.matmul(&b));
        assert_close(&ys, &yv, "matmul");
    }

    /// `a @ bᵀ` parity across random rectangular shapes.
    #[test]
    fn matmul_bt_parity(m in 1usize..10, k in 1usize..10, n in 1usize..10, seed in 0u64..1000) {
        let _g = lock();
        let a = randn([m, k], seed);
        let b = randn([n, k], seed ^ 0x77);
        let ys = with_backend(BackendKind::Scalar, || a.matmul_bt(&b));
        let yv = with_backend(BackendKind::Simd, || a.matmul_bt(&b));
        assert_close(&ys, &yv, "matmul_bt");
        let reference = with_backend(BackendKind::Scalar, || a.matmul(&b.transpose2()));
        assert_close(&reference, &yv, "matmul_bt vs composed transpose");
    }

    /// `aᵀ @ b` parity across random rectangular shapes.
    #[test]
    fn matmul_tb_parity(m in 1usize..10, k in 1usize..10, n in 1usize..10, seed in 0u64..1000) {
        let _g = lock();
        let a = randn([m, k], seed);
        let b = randn([m, n], seed ^ 0x99);
        let ys = with_backend(BackendKind::Scalar, || a.matmul_tb(&b));
        let yv = with_backend(BackendKind::Simd, || a.matmul_tb(&b));
        assert_close(&ys, &yv, "matmul_tb");
        let reference = with_backend(BackendKind::Scalar, || a.transpose2().matmul(&b));
        assert_close(&reference, &yv, "matmul_tb vs composed transpose");
    }

    /// Fused matmul+bias+activation parity (forward, via the tape).
    #[test]
    fn matmul_bias_act_parity(m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in 0u64..1000) {
        let _g = lock();
        let a = randn([m, k], seed);
        let w = randn([k, n], seed ^ 1);
        let b = randn([n], seed ^ 2);
        for act in [FusedAct::Identity, FusedAct::Tanh, FusedAct::LeakyRelu(0.2)] {
            let run = || {
                let tape = Tape::new();
                let av = tape.leaf(a.clone());
                let wv = tape.leaf(w.clone());
                let bv = tape.leaf(b.clone());
                av.matmul_bias_act(&wv, &bv, act).value().as_ref().clone()
            };
            let ys = with_backend(BackendKind::Scalar, run);
            let yv = with_backend(BackendKind::Simd, run);
            assert_close(&ys, &yv, "matmul_bias_act");
        }
    }

    /// conv2d forward parity across random shapes and paddings.
    #[test]
    fn conv2d_parity(
        n in 1usize..3, cin in 1usize..4, h in 1usize..8, w in 1usize..8,
        cout in 1usize..4, kh in 1usize..4, kw in 1usize..4, pad in 0usize..3,
        seed in 0u64..1000,
    ) {
        prop_assume!(kh <= h + 2 * pad && kw <= w + 2 * pad);
        let _g = lock();
        let x = randn([n, cin, h, w], seed);
        let wt = randn([cout, cin, kh, kw], seed ^ 7);
        let ys = with_backend(BackendKind::Scalar, || x.conv2d(&wt, pad));
        let yv = with_backend(BackendKind::Simd, || x.conv2d(&wt, pad));
        assert_close(&ys, &yv, "conv2d");
    }

    /// Fused conv2d+bias parity (forward, via the tape).
    #[test]
    fn conv2d_bias_parity(
        cin in 1usize..4, hw in 2usize..7, cout in 1usize..4, pad in 0usize..2,
        seed in 0u64..1000,
    ) {
        let _g = lock();
        let x = randn([2, cin, hw, hw], seed);
        let wt = randn([cout, cin, 3, 3], seed ^ 11);
        let b = randn([cout], seed ^ 12);
        prop_assume!(3 <= hw + 2 * pad);
        let run = || {
            let tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let wv = tape.leaf(wt.clone());
            let bv = tape.leaf(b.clone());
            xv.conv2d_bias(&wv, &bv, pad).value().as_ref().clone()
        };
        let ys = with_backend(BackendKind::Scalar, run);
        let yv = with_backend(BackendKind::Simd, run);
        assert_close(&ys, &yv, "conv2d_bias");
    }

    /// conv2d gradient parity (both grad_input and grad_weight).
    #[test]
    fn conv2d_grad_parity(
        n in 1usize..3, cin in 1usize..4, h in 2usize..8, w in 2usize..8,
        cout in 1usize..4, kh in 1usize..4, kw in 1usize..4, pad in 0usize..3,
        seed in 0u64..1000,
    ) {
        prop_assume!(kh <= h + 2 * pad && kw <= w + 2 * pad);
        let _g = lock();
        let x = randn([n, cin, h, w], seed);
        let wt = randn([cout, cin, kh, kw], seed ^ 21);
        let oh = h + 2 * pad - kh + 1;
        let ow = w + 2 * pad - kw + 1;
        let go = randn([n, cout, oh, ow], seed ^ 22);
        let (gis, gws) = with_backend(BackendKind::Scalar, || {
            (
                Tensor::conv2d_grad_input(&go, &wt, x.shape(), pad),
                Tensor::conv2d_grad_weight(&go, &x, wt.shape(), pad),
            )
        });
        let (giv, gwv) = with_backend(BackendKind::Simd, || {
            (
                Tensor::conv2d_grad_input(&go, &wt, x.shape(), pad),
                Tensor::conv2d_grad_weight(&go, &x, wt.shape(), pad),
            )
        });
        assert_close(&gis, &giv, "conv2d_grad_input");
        assert_close(&gws, &gwv, "conv2d_grad_weight");
    }
}

/// Each backend must produce bit-identical results at any thread count:
/// the determinism contract is per backend.
#[test]
fn per_backend_thread_count_bit_equality() {
    let _g = lock();
    let x = randn([2, 3, 9, 9], 41);
    let wt = randn([4, 3, 3, 3], 42);
    let go = randn([2, 4, 9, 9], 43);
    for kind in [BackendKind::Scalar, BackendKind::Simd] {
        with_backend(kind, || {
            pool::set_threads(Some(1));
            let y1 = x.conv2d(&wt, 1);
            let gi1 = Tensor::conv2d_grad_input(&go, &wt, x.shape(), 1);
            let gw1 = Tensor::conv2d_grad_weight(&go, &x, wt.shape(), 1);
            for t in [2, 4, 7] {
                pool::set_threads(Some(t));
                assert_eq!(bits(&y1), bits(&x.conv2d(&wt, 1)), "{kind:?} fwd @ {t}");
                assert_eq!(
                    bits(&gi1),
                    bits(&Tensor::conv2d_grad_input(&go, &wt, x.shape(), 1)),
                    "{kind:?} grad_input @ {t}"
                );
                assert_eq!(
                    bits(&gw1),
                    bits(&Tensor::conv2d_grad_weight(&go, &x, wt.shape(), 1)),
                    "{kind:?} grad_weight @ {t}"
                );
            }
            pool::set_threads(None);
        });
    }
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// Finite-difference check of the Simd conv gradients: the adjoint
/// kernels must match numerical derivatives of the forward kernel.
#[test]
fn simd_conv_grads_match_finite_differences() {
    let _g = lock();
    with_backend(BackendKind::Simd, || {
        let x = randn([1, 2, 5, 5], 71);
        let wt = randn([3, 2, 3, 3], 72);
        let pad = 1;
        let r = randn([1, 3, 5, 5], 73);
        let loss = |x: &Tensor, wt: &Tensor| -> f32 {
            x.conv2d(wt, pad)
                .data()
                .iter()
                .zip(r.data())
                .map(|(a, b)| a * b)
                .sum()
        };
        let gi = Tensor::conv2d_grad_input(&r, &wt, x.shape(), pad);
        let gw = Tensor::conv2d_grad_weight(&r, &x, wt.shape(), pad);
        let eps = 1e-2f32;
        for i in (0..x.numel()).step_by(7) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp, &wt) - loss(&xm, &wt)) / (2.0 * eps);
            assert!(
                (num - gi.data()[i]).abs() < 1e-2 * num.abs().max(1.0),
                "grad_input[{i}]: fd {num} vs analytic {}",
                gi.data()[i]
            );
        }
        for i in (0..wt.numel()).step_by(5) {
            let mut wp = wt.clone();
            wp.data_mut()[i] += eps;
            let mut wm = wt.clone();
            wm.data_mut()[i] -= eps;
            let num = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            assert!(
                (num - gw.data()[i]).abs() < 1e-2 * num.abs().max(1.0),
                "grad_weight[{i}]: fd {num} vs analytic {}",
                gw.data()[i]
            );
        }
    });
}

/// Regression for the `g == 0.0` skip: an `inf` in the input must
/// surface as NaN in `grad_weight` even when the upstream gradient is
/// zero there (`0 · inf = NaN`), instead of being silently dropped.
#[test]
fn non_finite_input_propagates_to_grad_weight() {
    let _g = lock();
    for kind in [BackendKind::Scalar, BackendKind::Simd] {
        with_backend(kind, || {
            let mut x = Tensor::zeros([1, 1, 3, 3]);
            x.data_mut()[4] = f32::INFINITY;
            let go = Tensor::zeros([1, 1, 2, 2]);
            let gw = Tensor::conv2d_grad_weight(&go, &x, &Shape::new(&[1, 1, 2, 2]), 0);
            assert!(
                gw.data().iter().any(|v| v.is_nan()),
                "{kind:?}: inf input swallowed by zero upstream gradient"
            );
        });
    }
}

/// Same principle for grad_input: an `inf` in the weight must not be
/// masked by a zero upstream gradient.
#[test]
fn non_finite_weight_propagates_to_grad_input() {
    let _g = lock();
    for kind in [BackendKind::Scalar, BackendKind::Simd] {
        with_backend(kind, || {
            let mut wt = Tensor::zeros([1, 1, 2, 2]);
            wt.data_mut()[0] = f32::INFINITY;
            let go = Tensor::zeros([1, 1, 2, 2]);
            let gi = Tensor::conv2d_grad_input(&go, &wt, &Shape::new(&[1, 1, 3, 3]), 0);
            assert!(
                gi.data().iter().any(|v| v.is_nan()),
                "{kind:?}: inf weight swallowed by zero upstream gradient"
            );
        });
    }
}

/// The transposed products take a different code path once the rhs
/// outgrows the transpose-free threshold (16 Ki elements); pin parity
/// at a shape past it.
#[test]
fn matmul_bt_tb_parity_above_transpose_threshold() {
    let _g = lock();
    let a = randn([48, 160], 31);
    let b_bt = randn([130, 160], 32); // 20 800 elements
    let b_tb = randn([48, 450], 33); // 21 600 elements
    let (ys_bt, ys_tb) = with_backend(BackendKind::Scalar, || {
        (a.matmul_bt(&b_bt), a.matmul_tb(&b_tb))
    });
    let (yv_bt, yv_tb) = with_backend(BackendKind::Simd, || {
        (a.matmul_bt(&b_bt), a.matmul_tb(&b_tb))
    });
    assert_close(&ys_bt, &yv_bt, "matmul_bt above threshold");
    assert_close(&ys_tb, &yv_tb, "matmul_tb above threshold");
}

/// The simd tanh/sigmoid approximations must track libm across the
/// whole useful range, saturate cleanly far outside it, and keep
/// sigmoid inside [0, 1].
#[test]
fn elementwise_activation_parity() {
    let _g = lock();
    let n = 4001;
    let mut vals: Vec<f32> = (0..n)
        .map(|i| -20.0 + 40.0 * i as f32 / (n - 1) as f32)
        .collect();
    vals.extend([-1e30, -100.0, -0.0, 0.0, 100.0, 1e30]);
    let x = Tensor::from_vec(vals, [n + 6]);
    let run_tanh = || {
        let tape = Tape::new();
        tape.leaf(x.clone()).tanh().value().as_ref().clone()
    };
    let run_sigmoid = || {
        let tape = Tape::new();
        tape.leaf(x.clone()).sigmoid().value().as_ref().clone()
    };
    let ts = with_backend(BackendKind::Scalar, run_tanh);
    let tv = with_backend(BackendKind::Simd, run_tanh);
    assert_close(&ts, &tv, "tanh");
    let ss = with_backend(BackendKind::Scalar, run_sigmoid);
    let sv = with_backend(BackendKind::Simd, run_sigmoid);
    assert_close(&ss, &sv, "sigmoid");
    assert!(
        sv.data().iter().all(|&v| (0.0..=1.0).contains(&v)),
        "simd sigmoid escaped [0, 1]"
    );
    assert!(
        tv.data().iter().all(|&v| (-1.0..=1.0).contains(&v)),
        "simd tanh escaped [-1, 1]"
    );
}

/// A zero-size kernel is a shape error with a proper message, not an
/// arithmetic underflow in the output-extent computation.
#[test]
#[should_panic(expected = "positive extent")]
fn conv2d_rejects_zero_size_kernel() {
    let x = Tensor::zeros([1, 1, 4, 4]);
    let wt = Tensor::zeros([1, 1, 0, 3]);
    x.conv2d(&wt, 0);
}

/// The gradient entry points validate the kernel dims too.
#[test]
#[should_panic(expected = "positive extent")]
fn conv2d_grad_weight_rejects_zero_size_kernel() {
    let go = Tensor::zeros([1, 1, 4, 4]);
    let x = Tensor::zeros([1, 1, 4, 4]);
    Tensor::conv2d_grad_weight(&go, &x, &Shape::new(&[1, 1, 3, 0]), 1);
}

/// int8 widening is bit-identical across backends for every one of the
/// 256 byte patterns at several scales, at lengths exercising both the
/// blocked body and the remainder tail, and matches the q8 reference
/// dequantization exactly.
#[test]
fn widen_i8_scaled_bitwise_parity_exhaustive() {
    use spectragan_tensor::backend::scalar::ScalarBackend;
    use spectragan_tensor::backend::simd::SimdBackend;
    use spectragan_tensor::backend::Backend;

    for scale in [1.0f32, 0.5, 2.0 / 127.0, 1e-3, 3.7e4] {
        for rows in [1usize, 2, 4] {
            let row_len = 256 / rows;
            let bytes: Vec<u8> = (0..=255u8).collect();
            let scales: Vec<f32> = (0..rows).map(|r| scale * (r + 1) as f32).collect();
            let mut scalar = vec![0f32; 256];
            let mut simd = vec![0f32; 256];
            ScalarBackend.widen_i8_scaled(&bytes, &scales, &mut scalar);
            SimdBackend.widen_i8_scaled(&bytes, &scales, &mut simd);
            for i in 0..256 {
                assert_eq!(
                    scalar[i].to_bits(),
                    simd[i].to_bits(),
                    "byte {i:#04x} at scale {scale}, {rows} rows"
                );
                let expect = (bytes[i] as i8 as i32 as f32) * scales[i / row_len];
                assert_eq!(scalar[i].to_bits(), expect.to_bits());
            }
        }
    }
}

/// The scalar dequantizing GEMM is the *definition* of the int8 matmul:
/// it must be bit-identical to widening the quantized operand and
/// running the scalar f32 matmul (same skip, same accumulation order).
/// The simd GEMM hoists the per-row `a·s` coefficient, so it only has
/// to agree to reassociation tolerance — same contract as f32 matmul.
#[test]
fn matmul_q8_scalar_is_bit_identical_to_widen_then_matmul() {
    use spectragan_tensor::backend::scalar::ScalarBackend;
    use spectragan_tensor::backend::Backend;
    use spectragan_tensor::q8;

    let _g = lock();
    for (m, k, n, seed) in [(1, 1, 1, 1u64), (3, 5, 4, 2), (8, 16, 9, 3), (5, 33, 17, 4)] {
        let a = randn([m, k], seed);
        let b = randn([k, n], seed ^ 0x5555);
        let q = q8::quantize_tensor(b.data(), b.shape());
        let direct = ScalarBackend.matmul_q8(&a, &q.data, &q.scales, n);
        let widened = with_backend(BackendKind::Scalar, || {
            let mut wide = Tensor::zeros([k, n]);
            ScalarBackend.widen_i8_scaled(&q.data, &q.scales, wide.data_mut());
            a.matmul(&wide)
        });
        assert_eq!(
            bits(&direct),
            bits(&widened),
            "scalar matmul_q8 diverged from its widen+matmul definition at {m}x{k}x{n}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dequantizing GEMM parity: Simd vs the Scalar reference across
    /// random shapes, including zero activations (the `av == 0` skip).
    #[test]
    fn matmul_q8_parity(m in 1usize..10, k in 1usize..12, n in 1usize..10, seed in 0u64..1000) {
        use spectragan_tensor::backend::scalar::ScalarBackend;
        use spectragan_tensor::backend::simd::SimdBackend;
        use spectragan_tensor::backend::Backend;
        use spectragan_tensor::q8;

        let _g = lock();
        let mut a = randn([m, k], seed);
        // Sprinkle exact zeros so both backends exercise their skip.
        for v in a.data_mut().iter_mut().step_by(3) {
            *v = 0.0;
        }
        let b = randn([k, n], seed ^ 0xa8);
        let q = q8::quantize_tensor(b.data(), b.shape());
        let ys = ScalarBackend.matmul_q8(&a, &q.data, &q.scales, n);
        let yv = SimdBackend.matmul_q8(&a, &q.data, &q.scales, n);
        assert_close(&ys, &yv, "matmul_q8");
    }
}

/// Each backend's dequantizing GEMM must be bit-identical to itself at
/// every thread count — the same determinism contract as conv2d.
#[test]
fn matmul_q8_thread_count_bit_equality() {
    use spectragan_tensor::backend::scalar::ScalarBackend;
    use spectragan_tensor::backend::simd::SimdBackend;
    use spectragan_tensor::backend::Backend;
    use spectragan_tensor::q8;

    let _g = lock();
    let a = randn([17, 24], 51);
    let b = randn([24, 19], 52);
    let q = q8::quantize_tensor(b.data(), b.shape());
    let run_scalar = || ScalarBackend.matmul_q8(&a, &q.data, &q.scales, 19);
    let run_simd = || SimdBackend.matmul_q8(&a, &q.data, &q.scales, 19);
    pool::set_threads(Some(1));
    let (s1, v1) = (run_scalar(), run_simd());
    for t in [2, 4, 7] {
        pool::set_threads(Some(t));
        assert_eq!(bits(&s1), bits(&run_scalar()), "scalar matmul_q8 @ {t}");
        assert_eq!(bits(&v1), bits(&run_simd()), "simd matmul_q8 @ {t}");
    }
    pool::set_threads(None);
}

/// f16 widening is *exact* and bit-identical across backends for every
/// one of the 65536 half patterns, at lengths that exercise both the
/// blocked body and the remainder tail of the simd loop.
#[test]
fn widen_f16_le_bitwise_parity_exhaustive() {
    use spectragan_tensor::backend::scalar::ScalarBackend;
    use spectragan_tensor::backend::simd::SimdBackend;
    use spectragan_tensor::backend::Backend;
    use spectragan_tensor::f16::f16_to_f32;

    let bytes: Vec<u8> = (0..=u16::MAX).flat_map(|h: u16| h.to_le_bytes()).collect();
    for len in [0usize, 1, 7, 8, 9, 1000, 65536] {
        let sub = &bytes[..2 * len];
        let mut scalar = vec![0f32; len];
        let mut simd = vec![0f32; len];
        ScalarBackend.widen_f16_le(sub, &mut scalar);
        SimdBackend.widen_f16_le(sub, &mut simd);
        for i in 0..len {
            assert_eq!(
                scalar[i].to_bits(),
                simd[i].to_bits(),
                "pattern {i:#06x} at len {len}"
            );
            assert_eq!(scalar[i].to_bits(), f16_to_f32(i as u16).to_bits());
        }
    }
}
