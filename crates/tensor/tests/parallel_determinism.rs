//! Bit-for-bit serial/parallel equivalence for the pool-backed conv2d
//! kernels: for arbitrary (odd, ragged) shapes, running at 1 thread and
//! at several worker counts must produce identical bits, not merely
//! close floats. This is the contract `spectragan_tensor::pool`
//! advertises and the generation determinism tests rely on.

use proptest::prelude::*;
use rand::SeedableRng;
use spectragan_tensor::{pool, Tensor};

/// `pool::set_threads` is process-global; serialize the sweeps so
/// concurrently running properties don't fight over it.
static POOL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Worker counts to compare against the serial run, deliberately
/// including counts above this machine's core count and counts that do
/// not divide the tile counts evenly.
const SWEEP: [usize; 4] = [2, 3, 5, 8];

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conv2d_forward_is_thread_count_invariant(
        (n, cin, cout) in (1usize..3, 1usize..4, 1usize..4),
        (h, w) in (1usize..8, 1usize..8),
        (kh, kw, pad) in (1usize..4, 1usize..4, 0usize..3),
        seed in 0u64..1000,
    ) {
        prop_assume!(h + 2 * pad >= kh && w + 2 * pad >= kw);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let input = Tensor::randn([n, cin, h, w], &mut rng);
        let weight = Tensor::randn([cout, cin, kh, kw], &mut rng);

        let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        pool::set_threads(Some(1));
        let serial = bits(&input.conv2d(&weight, pad));
        for t in SWEEP {
            pool::set_threads(Some(t));
            let parallel = bits(&input.conv2d(&weight, pad));
            pool::set_threads(None);
            prop_assert_eq!(&parallel, &serial, "threads={}", t);
        }
    }

    #[test]
    fn conv2d_gradients_are_thread_count_invariant(
        (n, cin, cout) in (1usize..3, 1usize..4, 1usize..4),
        (h, w) in (1usize..8, 1usize..8),
        (kh, kw, pad) in (1usize..4, 1usize..4, 0usize..3),
        seed in 0u64..1000,
    ) {
        prop_assume!(h + 2 * pad >= kh && w + 2 * pad >= kw);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let input = Tensor::randn([n, cin, h, w], &mut rng);
        let weight = Tensor::randn([cout, cin, kh, kw], &mut rng);
        let oh = h + 2 * pad - kh + 1;
        let ow = w + 2 * pad - kw + 1;
        let grad_out = Tensor::randn([n, cout, oh, ow], &mut rng);

        let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        pool::set_threads(Some(1));
        let gi_serial =
            bits(&Tensor::conv2d_grad_input(&grad_out, &weight, input.shape(), pad));
        let gw_serial =
            bits(&Tensor::conv2d_grad_weight(&grad_out, &input, weight.shape(), pad));
        for t in SWEEP {
            pool::set_threads(Some(t));
            let gi = bits(&Tensor::conv2d_grad_input(&grad_out, &weight, input.shape(), pad));
            let gw = bits(&Tensor::conv2d_grad_weight(&grad_out, &input, weight.shape(), pad));
            pool::set_threads(None);
            prop_assert_eq!(&gi, &gi_serial, "grad_input, threads={}", t);
            prop_assert_eq!(&gw, &gw_serial, "grad_weight, threads={}", t);
        }
    }
}
