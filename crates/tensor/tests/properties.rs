//! Property-based tests for the tensor/autodiff substrate.

use proptest::prelude::*;
use spectragan_tensor::{Tape, Tensor};

fn arb_dims() -> impl Strategy<Value = (usize, usize)> {
    (1usize..6, 1usize..6)
}

proptest! {
    /// Matmul distributes over addition: (A+B)·C = A·C + B·C.
    #[test]
    fn matmul_distributes((m, k) in arb_dims(), n in 1usize..6, seed in 0u64..100) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::randn([m, k], &mut rng);
        let b = Tensor::randn([m, k], &mut rng);
        let c = Tensor::randn([k, n], &mut rng);
        let lhs = a.add(&b).matmul(&c);
        let rhs = a.matmul(&c).add(&b.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Transpose is an involution and matmul transposition law holds:
    /// (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn matmul_transpose_law((m, k) in arb_dims(), n in 1usize..6, seed in 0u64..100) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::randn([m, k], &mut rng);
        let b = Tensor::randn([k, n], &mut rng);
        let lhs = a.matmul(&b).transpose2();
        let rhs = b.transpose2().matmul(&a.transpose2());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// narrow/concat roundtrip along any axis of a rank-3 tensor.
    #[test]
    fn narrow_concat_roundtrip(d0 in 1usize..5, d1 in 1usize..5, d2 in 1usize..5, axis in 0usize..3, seed in 0u64..100) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = Tensor::randn([d0, d1, d2], &mut rng);
        let len = x.shape().dim(axis);
        prop_assume!(len >= 2);
        let split = len / 2;
        let a = x.narrow(axis, 0, split);
        let b = x.narrow(axis, split, len - split);
        prop_assert_eq!(Tensor::concat(&[&a, &b], axis), x);
    }

    /// Any permutation composed with its inverse is identity.
    #[test]
    fn permute_inverse(seed in 0u64..200) {
        use rand::SeedableRng;
        use rand::seq::SliceRandom;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = Tensor::randn([2, 3, 4, 5], &mut rng);
        let mut perm: Vec<usize> = (0..4).collect();
        perm.shuffle(&mut rng);
        let mut inv = vec![0usize; 4];
        for (i, &p) in perm.iter().enumerate() { inv[p] = i; }
        prop_assert_eq!(x.permute(&perm).permute(&inv), x);
    }

    /// The gradient of sum(x ⊙ w) wrt x is exactly w (linear form).
    #[test]
    fn gradient_of_linear_form(n in 1usize..20, seed in 0u64..100) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let xv = Tensor::randn([n], &mut rng);
        let wv = Tensor::randn([n], &mut rng);
        let tape = Tape::new();
        let x = tape.leaf(xv);
        let w = tape.leaf(wv.clone());
        let loss = x.mul(&w).sum();
        let grads = tape.backward(&loss);
        let gx = grads.get(&x).unwrap();
        for (a, b) in gx.data().iter().zip(wv.data()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// Backward through reshape/permute keeps gradient elements intact:
    /// d(sum)/dx is all-ones whatever the view chain.
    #[test]
    fn gradient_through_views_is_ones(seed in 0u64..100) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let xv = Tensor::randn([2, 3, 4], &mut rng);
        let tape = Tape::new();
        let x = tape.leaf(xv);
        let loss = x.permute(&[2, 0, 1]).reshape([4, 6]).sum();
        let grads = tape.backward(&loss);
        for &g in grads.get(&x).unwrap().data() {
            prop_assert!((g - 1.0).abs() < 1e-6);
        }
    }

    /// avg_pool2 preserves the mean of the tensor.
    #[test]
    fn avg_pool_preserves_mean(n in 1usize..3, c in 1usize..3, hw in 1usize..4, seed in 0u64..100) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = Tensor::randn([n, c, 2 * hw, 2 * hw], &mut rng);
        let pooled = x.avg_pool2();
        prop_assert!((x.mean() - pooled.mean()).abs() < 1e-5);
    }
}
