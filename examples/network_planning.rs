//! Network-planning workflow on synthetic data (§5 of the paper): use
//! SpectraGAN-generated traffic to (a) size micro-BS sleeping savings
//! and (b) plan RU-to-CU associations in a vRAN — then check both
//! decisions against the real traffic the operator would observe.
//!
//! ```text
//! cargo run --release --example network_planning
//! ```

use spectragan::core::{SpectraGan, SpectraGanConfig, TrainConfig};
use spectragan_apps::power;
use spectragan_apps::vran;
use spectragan_synthdata::{country1, DatasetConfig};

fn main() {
    let ds = DatasetConfig::eval();
    let cities = country1(&ds);
    let (target, train_cities) = cities.split_first().expect("nine cities");
    println!("planning for {} using synthetic data only", target.name);

    let mut model = SpectraGan::new(SpectraGanConfig::default_hourly(), 9);
    let tc = TrainConfig {
        steps: 120,
        batch_patches: 3,
        lr: 2e-3,
        seed: 0,
    };
    model.train(train_cities, &tc).expect("training failed");
    let synth = model.generate(&target.context, 2 * 168, 5);
    let real = target.traffic.slice_time(168, 3 * 168);

    // (a) §5.1 — micro-BS sleeping: decide from synthetic, pay on real.
    let week_real = real.slice_time(0, 168);
    let week_synth = synth.slice_time(0, 168);
    let informed_by_real = power::evaluate(&week_real, &week_real);
    let informed_by_synth = power::evaluate(&week_synth, &week_real);
    println!("\nmicro-BS sleeping (power per unit area):");
    println!("  always on:             {:.2}", informed_by_real.always_on);
    println!(
        "  sleeping, real data:   {:.2} (saving {:.1}%)",
        informed_by_real.with_sleeping,
        100.0 * informed_by_real.saving()
    );
    println!(
        "  sleeping, synth data:  {:.2} (saving {:.1}%)",
        informed_by_synth.with_sleeping,
        100.0 * informed_by_synth.saving()
    );

    // (b) §5.2 — vRAN load balancing for 4 CUs: plan on synthetic day
    // 1, realize on real day 2.
    let day = 24;
    let plan_synth = synth.slice_time(0, day);
    let plan_real = real.slice_time(0, day);
    let eval_day = real.slice_time(day, 2 * day);
    let a_synth = vran::assess(&plan_synth, &eval_day, 4);
    let a_real = vran::assess(&plan_real, &eval_day, 4);
    println!("\nvRAN RU-to-CU load balance (Jain index over one day, 4 CUs):");
    println!(
        "  planned on real data:  {:.3} ± {:.3}",
        a_real.mean(),
        a_real.std()
    );
    println!(
        "  planned on synthetic:  {:.3} ± {:.3}",
        a_synth.mean(),
        a_synth.std()
    );
    println!("\n(The paper's point: the two rows should be close — synthetic data");
    println!(" is a dependable stand-in for planning studies.)");
}
