//! Quickstart: train SpectraGAN on a handful of synthetic cities, then
//! generate three weeks of traffic for a city the model has never
//! seen — from its public context alone.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use spectragan::core::{SpectraGan, SpectraGanConfig, TrainConfig};
use spectragan_metrics::{m_tv, pearson, ssim_mean_maps};
use spectragan_synthdata::{country1, DatasetConfig};

fn main() {
    // 1. Data. The paper uses NDA-gated operator measurements; this
    //    workspace ships a calibrated simulator with the same
    //    statistical structure (see DESIGN.md). Four weeks hourly,
    //    half-scale cities.
    let ds = DatasetConfig::eval();
    let cities = country1(&ds);
    let (test_city, train_cities) = cities.split_first().expect("nine cities");
    println!(
        "training on {} cities, holding out {}",
        train_cities.len(),
        test_city.name
    );

    // 2. Model + training (1 week of each training city).
    let cfg = SpectraGanConfig::default_hourly();
    let mut model = SpectraGan::new(cfg, 42);
    println!(
        "SpectraGAN with {} parameters ({} weights)",
        model.store().len(),
        model.store().num_weights()
    );
    let tc = TrainConfig {
        steps: 120,
        batch_patches: 3,
        lr: 2e-3,
        seed: 0,
    };
    let stats = model.train(train_cities, &tc).expect("training failed");
    println!(
        "trained {} steps; L1 {:.3} → {:.3}",
        tc.steps,
        stats.l1.first().copied().unwrap_or(0.0),
        stats.l1.last().copied().unwrap_or(0.0)
    );

    // 3. Generate 3 weeks (beyond the 1-week training duration) for the
    //    unseen city, from context only.
    let t_out = 3 * 168;
    let synth = model.generate(&test_city.context, t_out, 7);
    println!(
        "generated {}×{}×{} synthetic traffic for {}",
        synth.len_t(),
        synth.height(),
        synth.width(),
        test_city.name
    );

    // 4. Compare against the real held-out weeks.
    let real = test_city.traffic.slice_time(168, 168 + t_out);
    println!("fidelity vs real data:");
    println!(
        "  spatial PCC of mean maps: {:.3}",
        pearson(&real.mean_map(), &synth.mean_map())
    );
    println!(
        "  SSIM:                     {:.3}",
        ssim_mean_maps(&real, &synth)
    );
    println!("  M-TV:                     {:.4}", m_tv(&real, &synth));
}
