//! Spectral anatomy of mobile traffic — the observation SpectraGAN is
//! built on (Fig. 1d/e): per-pixel traffic has a handful of dominant
//! frequency components, and keeping only those reconstructs the series
//! almost perfectly. Also demonstrates the k-multiple expansion used
//! to generate beyond the training duration (§2.2.4, Appendix C).
//!
//! ```text
//! cargo run --release --example spectral_analysis
//! ```

use spectragan_dsp::{expand_spectrum, irfft, magnitude, reconstruct_top_k, rfft, top_k_indices};
use spectragan_synthdata::{country1, DatasetConfig};

fn main() {
    let ds = DatasetConfig {
        weeks: 1,
        steps_per_hour: 1,
        size_scale: 0.5,
    };
    let city = &country1(&ds)[0];
    let series = city.traffic.city_series();
    let t = series.len();
    println!(
        "{}: one week of hourly city-mean traffic ({t} samples)",
        city.name
    );

    // Dominant components.
    let spec = rfft(&series);
    let mags = magnitude(&spec);
    println!("\ndominant frequency components:");
    for &k in top_k_indices(&spec, 6).iter() {
        let period = if k == 0 {
            f64::INFINITY
        } else {
            t as f64 / k as f64
        };
        println!(
            "  bin {k:>3}  period {period:>8.1} h  magnitude {:.3}",
            mags[k]
        );
    }

    // Reconstruction quality vs number of components (Fig. 1e).
    println!("\nreconstruction error vs kept components:");
    let energy: f64 = series.iter().map(|v| v * v).sum();
    for k in [1usize, 2, 3, 5, 8, 13, 85] {
        let rec = reconstruct_top_k(&series, k);
        let err: f64 = series
            .iter()
            .zip(&rec)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        println!("  k = {k:>3}: {:.3}% residual energy", 100.0 * err / energy);
    }

    // k-multiple expansion: a 3-week series from a 1-week spectrum.
    let expanded = expand_spectrum(&spec, t, 3);
    let long = irfft(&expanded, 3 * t);
    println!("\nk-multiple expansion to 3 weeks: {} samples", long.len());
    let max_rep_err = (0..t)
        .map(|i| (long[t + i] - series[i]).abs())
        .fold(0.0f64, f64::max);
    println!("  max deviation of week 2 from week 1: {max_rep_err:.2e} (periodic by construction)");
    println!("  (SpectraGAN adds its LSTM residual on top, so generated weeks differ)");
}
