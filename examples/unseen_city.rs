//! Generate traffic for a *custom* region you describe yourself: build
//! a context map by hand (a downtown, a suburb, an industrial strip),
//! feed it to a trained SpectraGAN, and inspect where and when the
//! synthetic traffic peaks.
//!
//! This mirrors the paper's headline use: producing data for regions
//! where no measurements exist, controllably, from public context.
//!
//! ```text
//! cargo run --release --example unseen_city
//! ```

use spectragan::core::{SpectraGan, SpectraGanConfig, TrainConfig};
use spectragan_geo::context::NUM_ATTRIBUTES;
use spectragan_geo::ContextMap;
use spectragan_synthdata::{country1, DatasetConfig};

/// Paints a Gaussian bump of `weight` onto one attribute plane.
fn paint(ctx: &mut ContextMap, attr: usize, cy: f64, cx: f64, sigma: f64, weight: f32) {
    for y in 0..ctx.height() {
        for x in 0..ctx.width() {
            let d2 = (y as f64 - cy).powi(2) + (x as f64 - cx).powi(2);
            *ctx.at_mut(attr, y, x) += weight * (-d2 / (2.0 * sigma * sigma)).exp() as f32;
        }
    }
}

fn main() {
    // Train briefly on the reference corpus.
    let ds = DatasetConfig::eval();
    let cities = country1(&ds);
    let mut model = SpectraGan::new(SpectraGanConfig::default_hourly(), 1);
    let tc = TrainConfig {
        steps: 120,
        batch_patches: 3,
        lr: 2e-3,
        seed: 0,
    };
    model.train(&cities, &tc).expect("training failed");

    // Hand-build a 20×20 region: dense center top-left, industrial
    // zone bottom-right, sparse elsewhere.
    let (h, w) = (20usize, 20usize);
    let mut ctx = ContextMap::zeros(NUM_ATTRIBUTES, h, w);
    // Census (0), Continuous Urban (1), shops/cafes/restaurants
    // (14, 16, 21) around the "downtown".
    for attr in [0usize, 1, 14, 16, 21] {
        paint(&mut ctx, attr, 6.0, 6.0, 3.0, 1.0);
    }
    // Industrial/Commercial (8), Office (19) in the other corner.
    for attr in [8usize, 19] {
        paint(&mut ctx, attr, 14.0, 14.0, 2.5, 1.0);
    }
    // Barren land (11) along the top edge.
    for x in 0..w {
        *ctx.at_mut(11, 0, x) = 1.0;
        *ctx.at_mut(11, 1, x) = 0.6;
    }

    let synth = model.generate(&ctx, 168, 3);
    println!("synthetic week for the hand-built region ({h}×{w}):");

    // Where does traffic concentrate?
    let mm = synth.mean_map();
    let (mut best, mut best_v) = ((0, 0), f64::MIN);
    for y in 0..h {
        for x in 0..w {
            if mm[y * w + x] > best_v {
                best_v = mm[y * w + x];
                best = (y, x);
            }
        }
    }
    println!("  busiest pixel: {best:?} (downtown was painted at (6, 6))");
    let downtown = mm[6 * w + 6];
    let industrial = mm[14 * w + 14];
    let edge = mm[w / 2];
    println!(
        "  mean traffic: downtown {downtown:.4}, industrial {industrial:.4}, barren edge {edge:.4}"
    );

    // When does it peak, on average?
    let series = synth.city_series();
    let day: Vec<f64> = (0..24)
        .map(|hr| (0..7).map(|d| series[d * 24 + hr]).sum::<f64>() / 7.0)
        .collect();
    let peak_hour = (0..24)
        .max_by(|&a, &b| day[a].partial_cmp(&day[b]).expect("finite"))
        .expect("24 hours");
    println!("  average peak hour of day: {peak_hour}:00");
    println!(
        "  hourly profile: {:?}",
        day.iter()
            .map(|v| (v * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
}
