#!/bin/sh
until grep -q REMAINDER_DONE /tmp/run_rem.log; do sleep 10; done
cd /root/repo
cargo test --workspace 2>&1 | tee /root/repo/test_output.txt | tail -5
echo TESTS_DONE
cargo bench --workspace 2>&1 | tee /root/repo/bench_output.txt | tail -3
echo BENCH_DONE
