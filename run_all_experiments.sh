#!/bin/sh
# Records every table/figure reproduction at the budgets documented in
# EXPERIMENTS.md. Logs land in repro_out/logs/.
set -x
mkdir -p repro_out/logs
B=./target/release
$B/repro_table1                                > repro_out/logs/table1.log   2>&1
$B/repro_table9_10                             > repro_out/logs/table9_10.log 2>&1
$B/repro_fig1                                  > repro_out/logs/fig1.log     2>&1
$B/repro_fig6                                  > repro_out/logs/fig6.log     2>&1
$B/repro_fig12                                 > repro_out/logs/fig12.log    2>&1
$B/repro_table2   --folds 2 --steps 500        > repro_out/logs/table2.log   2>&1
$B/repro_table3   --folds 1 --steps 400        > repro_out/logs/table3.log   2>&1
$B/repro_table4   --folds 1 --steps 400 --noise > repro_out/logs/table4.log  2>&1
$B/repro_table5   --folds 1 --steps 300        > repro_out/logs/table5.log   2>&1
$B/repro_table7   --folds 2 --steps 300        > repro_out/logs/table7.log   2>&1
$B/repro_table8   --folds 2 --steps 400        > repro_out/logs/table8.log   2>&1
$B/repro_table11  --steps 300                  > repro_out/logs/table11.log  2>&1
$B/repro_fig9     --steps 300                  > repro_out/logs/fig9.log     2>&1
$B/repro_country1 --folds 2 --steps 300        > repro_out/logs/country1.log 2>&1
$B/repro_usecases --folds 3 --steps 300        > repro_out/logs/usecases.log 2>&1
echo ALL_EXPERIMENTS_DONE
