#!/bin/sh
set -x
mkdir -p repro_out/logs
B=./target/release
$B/repro_table4   --folds 1 --steps 250 --noise > repro_out/logs/table4.log  2>&1
$B/repro_table5   --folds 1 --steps 250        > repro_out/logs/table5.log  2>&1
$B/repro_table7   --folds 2 --steps 250        > repro_out/logs/table7.log  2>&1
$B/repro_table8   --folds 2 --steps 300        > repro_out/logs/table8.log  2>&1
$B/repro_table11  --steps 250                  > repro_out/logs/table11.log 2>&1
$B/repro_fig9     --steps 250                  > repro_out/logs/fig9.log    2>&1
$B/repro_country1 --folds 2 --steps 250        > repro_out/logs/country1.log 2>&1
$B/repro_usecases --folds 3 --steps 250        > repro_out/logs/usecases.log 2>&1
echo REMAINDER_DONE
