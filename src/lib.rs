//! # spectragan
//!
//! A from-scratch Rust reproduction of **"SpectraGAN: Spectrum based
//! Generation of City Scale Spatiotemporal Mobile Network Traffic
//! Data"** (CoNEXT 2021) — a conditional GAN that synthesizes mobile
//! network traffic for arbitrary urban regions and durations from
//! publicly available context (census, land use, points of interest).
//!
//! This meta-crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `spectragan-core` | the SpectraGAN model, training, generation |
//! | [`tensor`] | `spectragan-tensor` | dense tensors + reverse-mode autodiff |
//! | [`nn`] | `spectragan-nn` | layers, optimizers, parameter store |
//! | [`dsp`] | `spectragan-dsp` | FFT, spectrum masking, k-expansion |
//! | [`geo`] | `spectragan-geo` | grids, traffic/context maps, patches |
//! | [`synthdata`] | `spectragan-synthdata` | the calibrated city simulator |
//! | [`baselines`] | `spectragan-baselines` | FDAS, Pix2Pix, DoppelGANger, Conv{3D+LSTM} |
//! | [`metrics`] | `spectragan-metrics` | M-TV, SSIM, AC-L1, TSTR, FVD, PSNR, Jain |
//! | [`apps`] | `spectragan-apps` | BS sleeping, vRAN balancing, population tracking |
//!
//! See `examples/quickstart.rs` for the 30-line train-and-generate
//! flow, DESIGN.md for the system inventory and substitutions, and
//! EXPERIMENTS.md for paper-vs-measured results.

pub use spectragan_apps as apps;
pub use spectragan_baselines as baselines;
pub use spectragan_core as core;
pub use spectragan_dsp as dsp;
pub use spectragan_geo as geo;
pub use spectragan_metrics as metrics;
pub use spectragan_nn as nn;
pub use spectragan_synthdata as synthdata;
pub use spectragan_tensor as tensor;
