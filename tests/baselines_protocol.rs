//! Integration tests of the evaluation protocol across models: every
//! generator in the zoo must honour the same contract (train on one
//! week of multiple cities, generate arbitrary lengths for unseen
//! grids), and the known qualitative differences between families must
//! show up in the metrics.

use spectragan::baselines::conv3d_lstm::Conv3dLstmConfig;
use spectragan::baselines::doppelganger::DoppelGangerConfig;
use spectragan::baselines::pix2pix::Pix2PixConfig;
use spectragan::baselines::{
    BaselineTrainConfig, Conv3dLstmLite, DoppelGangerLite, Fdas, Pix2PixLite,
};
use spectragan::core::{SpectraGan, SpectraGanConfig, TrainConfig};
use spectragan_metrics::{ac_l1, m_tv};
use spectragan_synthdata::{generate_city, CityConfig, DatasetConfig};

fn cities(n: u64) -> Vec<spectragan_geo::City> {
    let ds = DatasetConfig {
        weeks: 1,
        steps_per_hour: 1,
        size_scale: 0.4,
    };
    (0..n)
        .map(|i| {
            generate_city(
                &CityConfig {
                    name: format!("BP{i}"),
                    height: 33,
                    width: 33,
                    seed: 70 + i,
                },
                &ds,
            )
        })
        .collect()
}

/// Every model generates the requested shape for an unseen grid, with
/// non-negative values, after a (very) short training run.
#[test]
fn all_models_honour_the_generation_contract() {
    let cs = cities(3);
    let (test, train) = cs.split_first().unwrap();
    let train = train.to_vec();
    let tc = BaselineTrainConfig {
        steps: 2,
        batch: 1,
        lr: 1e-3,
        seed: 0,
    };
    let t_out = 30;

    let outputs = vec![
        {
            let mut m = SpectraGan::new(SpectraGanConfig::tiny(), 0);
            m.train(
                &train,
                &TrainConfig {
                    steps: 2,
                    batch_patches: 1,
                    lr: 1e-3,
                    seed: 0,
                },
            )
            .unwrap();
            m.generate(&test.context, t_out, 0)
        },
        Fdas::fit(&train, 1).generate(&test.context, t_out, 0),
        {
            let mut m = Pix2PixLite::new(Pix2PixConfig::tiny(), 0);
            m.train(&train, &tc);
            m.generate(&test.context, t_out, 0)
        },
        {
            let mut m = DoppelGangerLite::new(DoppelGangerConfig::tiny(), 0);
            m.train(&train, &tc);
            m.generate(&test.context, t_out, 0)
        },
        {
            let mut m = Conv3dLstmLite::new(Conv3dLstmConfig::tiny(), 0);
            m.train(&train, &tc);
            m.generate(&test.context, t_out, 0)
        },
    ];
    for out in outputs {
        assert_eq!(out.len_t(), t_out);
        assert_eq!(out.height(), test.traffic.height());
        assert_eq!(out.width(), test.traffic.width());
        assert!(out.data().iter().all(|&v| v >= 0.0 && v.is_finite()));
    }
}

/// FDAS keeps the marginal but destroys per-pixel temporal structure —
/// the Fig. 6 story, measurable: its M-TV beats an untrained GAN while
/// its AC-L1 is bad.
#[test]
fn fdas_trades_marginals_for_correlations() {
    let cs = cities(2);
    let test = &cs[0];
    let fdas = Fdas::fit(&cs, 1).generate(&test.context, 168, 1);
    let untrained = SpectraGan::new(SpectraGanConfig::tiny(), 1).generate(&test.context, 168, 1);
    let real = &test.traffic;
    assert!(
        m_tv(real, &fdas) < m_tv(real, &untrained),
        "FDAS should nail the marginal"
    );
    // And its temporal fidelity is near the worst case (no structure).
    let ac = ac_l1(real, &fdas, 168);
    assert!(ac > 10.0, "FDAS AC-L1 suspiciously good: {ac}");
}

/// The k-multiple expansion means SpectraGAN's 2-week generation
/// contains the 1-week generation as its periodic skeleton: the two
/// outputs agree on the first week.
#[test]
fn long_generation_extends_short_generation() {
    let cs = cities(1);
    let model = SpectraGan::new(SpectraGanConfig::tiny(), 2);
    let short = model.generate(&cs[0].context, 24, 5);
    let long = model.generate(&cs[0].context, 48, 5);
    // Spectrum part repeats exactly; the LSTM residual is identical for
    // the first 24 steps (same seed → same noise → same rollout).
    for t in 0..24 {
        for y in 0..short.height() {
            for x in 0..short.width() {
                let a = short.at(t, y, x);
                let b = long.at(t, y, x);
                assert!((a - b).abs() < 1e-4, "t={t} ({y},{x}): {a} vs {b}");
            }
        }
    }
}
