//! Cross-crate integration tests: the full SpectraGAN pipeline from
//! synthetic data through training, generation, metrics and use cases.

use spectragan::core::{SpectraGan, SpectraGanConfig, TrainConfig, Variant};
use spectragan_apps::power;
use spectragan_apps::vran;
use spectragan_metrics::{ac_l1, fvd, m_tv, ssim_mean_maps, tstr_r2};
use spectragan_synthdata::{generate_city, generate_city_variant, CityConfig, DatasetConfig};

fn tiny_ds() -> DatasetConfig {
    DatasetConfig {
        weeks: 1,
        steps_per_hour: 1,
        size_scale: 0.4,
    }
}

fn city(seed: u64) -> spectragan_geo::City {
    generate_city(
        &CityConfig {
            name: format!("IT{seed}"),
            height: 33,
            width: 33,
            seed,
        },
        &tiny_ds(),
    )
}

#[test]
fn train_generate_evaluate_roundtrip() {
    let train: Vec<_> = (0..3).map(|i| city(50 + i)).collect();
    let test = city(99);
    let cfg = SpectraGanConfig::tiny();
    let mut model = SpectraGan::new(cfg, 0);
    let tc = TrainConfig {
        steps: 25,
        batch_patches: 2,
        lr: 3e-3,
        seed: 0,
    };
    model.train(&train, &tc).unwrap();
    let synth = model.generate(&test.context, 48, 1);
    // All five metrics must be computable and finite on the output.
    let real = test.traffic.slice_time(0, 48);
    assert!(m_tv(&real, &synth).is_finite());
    assert!(ssim_mean_maps(&real, &synth).is_finite());
    assert!(ac_l1(&real, &synth, 48).is_finite());
    assert!(tstr_r2(&real, &synth, 1).is_finite());
    assert!(fvd(&real, &synth, 1).is_finite());
}

#[test]
fn generated_data_feeds_every_use_case() {
    let test = city(7);
    let model = SpectraGan::new(SpectraGanConfig::tiny(), 3);
    let synth = model.generate(&test.context, 48, 2);
    let real = test.traffic.slice_time(0, 48);

    // §5.1 power.
    let report = power::evaluate(&synth, &real);
    assert!(report.always_on > 0.0 && report.with_sleeping > 0.0);

    // §5.2 vRAN.
    let plan = synth.slice_time(0, 24);
    let eval = real.slice_time(24, 48);
    let a = vran::assess(&plan, &eval, 4);
    assert!(a.mean() > 0.0 && a.mean() <= 1.0);

    // §5.3 population.
    let p = spectragan_apps::population_map(
        &synth,
        12,
        &spectragan_apps::PopulationModel::default_urban(),
        &spectragan_apps::ActivityProfile::default_urban(),
        1,
    );
    assert_eq!(p.len(), synth.height() * synth.width());
    assert!(p.iter().all(|v| v.is_finite() && *v >= 0.0));
}

#[test]
fn data_reference_scores_best_on_marginals() {
    // The DATA row of Table 2: an independent realization of the same
    // city should beat an *untrained* model on every metric.
    let cfg = CityConfig {
        name: "REF".into(),
        height: 33,
        width: 33,
        seed: 5,
    };
    let base = generate_city(&cfg, &tiny_ds());
    let variant = generate_city_variant(&cfg, &tiny_ds(), 999);
    let untrained = SpectraGan::new(SpectraGanConfig::tiny(), 0).generate(
        &base.context,
        base.traffic.len_t(),
        0,
    );
    let m_ref = m_tv(&base.traffic, &variant.traffic);
    let m_unt = m_tv(&base.traffic, &untrained);
    assert!(m_ref < m_unt, "reference {m_ref} vs untrained {m_unt}");
    let s_ref = ssim_mean_maps(&base.traffic, &variant.traffic);
    let s_unt = ssim_mean_maps(&base.traffic, &untrained);
    assert!(s_ref > s_unt, "reference {s_ref} vs untrained {s_unt}");
}

#[test]
fn ablation_variants_generate_distinct_outputs() {
    let test = city(11);
    let mut outputs = Vec::new();
    for variant in [Variant::Full, Variant::SpecOnly, Variant::TimeOnly] {
        let model = SpectraGan::new(SpectraGanConfig::tiny().with_variant(variant), 4);
        outputs.push(model.generate(&test.context, 24, 1));
    }
    assert_ne!(outputs[0].data(), outputs[1].data());
    assert_ne!(outputs[0].data(), outputs[2].data());
}
