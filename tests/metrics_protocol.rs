//! Integration tests pinning the *protocol-level* behaviour of the
//! metric suite: the DATA reference must dominate simple distortions,
//! and each metric must isolate its own axis of fidelity.

use spectragan_geo::TrafficMap;
use spectragan_metrics::{ac_l1, m_emd, m_tv, psnr, ssim_mean_maps, tstr_r2};
use spectragan_synthdata::{generate_city, generate_city_variant, CityConfig, DatasetConfig};

fn base_city() -> (spectragan_geo::City, spectragan_geo::City) {
    let ds = DatasetConfig {
        weeks: 2,
        steps_per_hour: 1,
        size_scale: 0.4,
    };
    let cfg = CityConfig {
        name: "MP".into(),
        height: 36,
        width: 36,
        seed: 21,
    };
    (
        generate_city(&cfg, &ds),
        generate_city_variant(&cfg, &ds, 77),
    )
}

/// Shuffle time: destroys temporal metrics, leaves marginal intact.
fn time_shuffled(map: &TrafficMap) -> TrafficMap {
    let (t, h, w) = (map.len_t(), map.height(), map.width());
    let mut out = TrafficMap::zeros(t, h, w);
    // Deterministic permutation: stride through time with a coprime step.
    let step = 89 % t.max(1);
    for ti in 0..t {
        let src = (ti * step.max(1)) % t;
        let hw = h * w;
        out.data_mut()[ti * hw..(ti + 1) * hw]
            .copy_from_slice(&map.data()[src * hw..(src + 1) * hw]);
    }
    out
}

/// Shuffle space: destroys spatial metrics, leaves marginal and each
/// series' *set of values over time* related.
fn space_shuffled(map: &TrafficMap) -> TrafficMap {
    let (t, h, w) = (map.len_t(), map.height(), map.width());
    let mut out = TrafficMap::zeros(t, h, w);
    let hw = h * w;
    for ti in 0..t {
        for px in 0..hw {
            let src = (px * 101 + 7) % hw;
            out.data_mut()[ti * hw + px] = map.data()[ti * hw + src];
        }
    }
    out
}

#[test]
fn marginal_metrics_ignore_shuffles_spatial_and_temporal_do_not() {
    let (city, _) = base_city();
    let real = city.traffic.slice_time(0, 168);
    let tsh = time_shuffled(&real);
    let ssh = space_shuffled(&real);

    // Shuffles preserve the marginal exactly.
    assert!(m_tv(&real, &tsh) < 1e-9);
    assert!(m_emd(&real, &tsh) < 1e-9);
    assert!(m_tv(&real, &ssh) < 1e-9);

    // Time shuffle wrecks AC-L1 but not SSIM.
    assert!(ac_l1(&real, &tsh, 168) > 10.0);
    assert!(ssim_mean_maps(&real, &tsh) > 0.99);

    // Space shuffle wrecks SSIM but leaves the city-wide temporal
    // structure (TSTR stays informative).
    assert!(ssim_mean_maps(&real, &ssh) < 0.9);
    assert!(tstr_r2(&real, &ssh, 1) > 0.3);
}

#[test]
fn data_reference_beats_distortions_on_every_metric() {
    let (city, variant) = base_city();
    let real = city.traffic.slice_time(0, 168);
    let reference = variant.traffic.slice_time(0, 168);
    let tsh = time_shuffled(&real);

    assert!(ac_l1(&real, &reference, 168) < ac_l1(&real, &tsh, 168));
    let ssh = space_shuffled(&real);
    assert!(ssim_mean_maps(&real, &reference) > ssim_mean_maps(&real, &ssh));
}

#[test]
fn psnr_tracks_population_map_similarity() {
    let (city, variant) = base_city();
    let model = spectragan_apps::PopulationModel::default_urban();
    let act = spectragan_apps::ActivityProfile::default_urban();
    let p_real = spectragan_apps::population_map(&city.traffic, 12, &model, &act, 1);
    let p_ref = spectragan_apps::population_map(&variant.traffic, 12, &model, &act, 1);
    let p_wrong = spectragan_apps::population_map(&city.traffic, 3, &model, &act, 1);
    // Same hour of an independent realization resembles reality more
    // than a different hour of the same realization (day/night swing).
    assert!(psnr(&p_real, &p_ref) > psnr(&p_real, &p_wrong));
}
