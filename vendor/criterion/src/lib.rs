//! Offline stand-in for `criterion`.
//!
//! A genuine (if simple) wall-clock measurement harness behind
//! criterion's API shape: warm up, calibrate iterations per sample to
//! a target sample duration, collect `sample_size` samples, report
//! mean / standard deviation / minimum. No plots, no statistics
//! beyond that — but the numbers are real measurements, which is what
//! EXPERIMENTS.md records.
//!
//! Benchmark binaries run with `harness = false` via `cargo bench`;
//! a positional command-line argument filters benchmarks by substring
//! (flags such as `--bench` are accepted and ignored).

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time for one measured sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);
/// Iterations used to estimate the routine's cost before calibration.
const WARMUP_ITERS: u64 = 3;

/// The benchmark driver: configuration plus the name filter.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Applies command-line arguments (substring filter; flags are
    /// ignored). Called by [`criterion_main!`].
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            if arg == "--sample-size" {
                if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                    self.sample_size = v;
                }
            } else if !arg.starts_with('-') {
                self.filter = Some(arg);
            }
        }
        self
    }

    /// Runs `routine` as a named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.filter.as_deref(), self.sample_size, routine);
        self
    }

    /// Opens a named group; benchmark ids inside are `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and optionally
/// their own sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Runs `routine` as `group/name`.
    pub fn bench_function<F>(&mut self, name: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.prefix, name.into().0);
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&id, self.criterion.filter.as_deref(), n, routine);
        self
    }

    /// Runs `routine(bencher, input)` as `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group (drop would do; kept for API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier: `name/parameter` or just a parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Just the parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to the routine; [`Bencher::iter`] performs the measurement.
pub struct Bencher {
    sample_size: usize,
    /// `(mean, stddev, min)` in seconds, set by `iter`.
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Measures `routine`, keeping its output alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and cost estimate.
        let start = Instant::now();
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let est = start.elapsed() / WARMUP_ITERS as u32;
        let iters = (TARGET_SAMPLE.as_nanos() / est.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() / iters as f64);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        self.result = Some((mean, var.sqrt(), min));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    filter: Option<&str>,
    sample_size: usize,
    mut routine: F,
) {
    if let Some(f) = filter {
        if !id.contains(f) {
            return;
        }
    }
    let mut bencher = Bencher {
        sample_size,
        result: None,
    };
    routine(&mut bencher);
    match bencher.result {
        Some((mean, sd, min)) => {
            println!(
                "{id:<44} time: [{} ± {} min {}]",
                fmt_time(mean),
                fmt_time(sd),
                fmt_time(min)
            );
        }
        None => println!("{id:<44} (no measurement: routine never called iter)"),
    }
}

/// Scales seconds into the most readable unit, as criterion does.
fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            criterion = criterion.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default().sample_size(3);
        // Routine with measurable cost; assert via the printed path by
        // reusing the internals directly.
        let mut b = Bencher {
            sample_size: 3,
            result: None,
        };
        b.iter(|| (0..1000u64).sum::<u64>());
        let (mean, _sd, min) = b.result.expect("iter ran");
        assert!(mean > 0.0 && min > 0.0 && min <= mean * 1.5);
        // And the public API path doesn't panic.
        c.bench_function("noop", |b| b.iter(|| 1u32 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }

    #[test]
    fn time_formatting_picks_units() {
        assert_eq!(fmt_time(2.0), "2.000 s");
        assert_eq!(fmt_time(2.5e-3), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.500 µs");
        assert_eq!(fmt_time(3.0e-9), "3.0 ns");
    }
}
