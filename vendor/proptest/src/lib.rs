//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro over `pattern in strategy` arguments, range and
//! tuple strategies, [`collection::vec`], `prop_assert*`/`prop_assume`
//! and [`ProptestConfig::with_cases`]. Cases are generated from a
//! deterministic per-test RNG (seeded from the test name), so failures
//! reproduce exactly; there is no shrinking — the failing inputs are
//! printed instead.

use rand::rngs::StdRng;
use rand::Rng;

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };

    pub mod prop {
        //! Namespace mirror of upstream's `prelude::prop`.
        pub use crate::collection;
    }
}

/// Runner configuration. Only the case count is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream default is 256; honor the same env override.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject,
    /// An assertion failed; the property is falsified.
    Fail(String),
}

/// A source of random test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

float_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

pub mod collection {
    //! Collection strategies.

    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy for `Vec`s with element strategy `S` and a length drawn
    /// from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Vectors of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// FNV-1a, used to give every property its own deterministic stream.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The deterministic RNG for one property, seeded from its full path
/// (macro support — callers don't need their own `rand` dependency).
pub fn rng_for(name: &str) -> StdRng {
    use rand::SeedableRng;
    StdRng::seed_from_u64(seed_for(name))
}

/// Defines property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut __proptest_rng =
                $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u64 = 0;
            while accepted < config.cases {
                attempts += 1;
                if attempts > 64 * config.cases as u64 + 1024 {
                    panic!(
                        "property {}: too many rejected cases ({} accepted of {})",
                        stringify!($name), accepted, config.cases,
                    );
                }
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::TestCaseError::Reject) => continue,
                    Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "property {} falsified at case {}: {}",
                        stringify!($name), accepted, msg,
                    ),
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Fails the current case if `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {} != {} (both {:?})",
                    stringify!($left), stringify!($right), l),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {} != {} ({}; both {:?})",
                    stringify!($left), stringify!($right), format!($($fmt)+), l),
            ));
        }
    }};
}

/// Rejects the current case (it is re-drawn) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_are_honored(n in 3usize..10, x in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((-1.0..1.0).contains(&x));
        }

        #[test]
        fn tuples_and_vecs((a, b) in (0u64..5, 1u64..6), v in prop::collection::vec(0.0f32..1.0, 2..7)) {
            prop_assert!(a < 5 && (1..6).contains(&b));
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn assume_rejects_and_retries(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n, 1);
        }
    }
}
