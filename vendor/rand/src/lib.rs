//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache,
//! so the workspace vendors the *subset* of the rand 0.8 API it
//! actually uses: [`rngs::StdRng`] (here xoshiro256++ seeded via
//! SplitMix64), [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]
//! over integer and float ranges, and [`seq::SliceRandom::shuffle`].
//!
//! The streams differ from upstream rand's `StdRng` (which is ChaCha12
//! and makes no cross-version stability promise anyway); everything in
//! this workspace that consumes randomness depends only on determinism
//! per seed and on basic statistical quality, both of which hold here.

pub mod rngs;
pub mod seq;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer below `span` via Lemire's multiply-shift. The tiny
/// residual bias (< 2⁻⁶⁴·span) is irrelevant for simulation use.
#[inline]
fn below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range on empty range");
        // 24 explicit mantissa bits → u ∈ [0, 1), so the result stays
        // below `end` and at or above `start`.
        let u = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * u
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
            let d = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&d));
        }
    }

    #[test]
    fn float_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
