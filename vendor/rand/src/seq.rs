//! Sequence utilities: just [`SliceRandom::shuffle`].

use crate::RngCore;

/// Random operations on slices.
pub trait SliceRandom {
    /// Uniform in-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = crate::below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements left in place");
    }
}
