//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so the workspace
//! vendors a minimal serialization framework under serde's name. The
//! real serde decouples data formats from data structures through
//! serializer/deserializer visitors; the only format this workspace
//! ever uses is JSON, so the stand-in collapses the design to a single
//! in-memory [`Value`] tree: [`Serialize`] lowers a type into a
//! `Value`, [`Deserialize`] rebuilds the type from one, and the
//! `serde_json` stand-in handles text.
//!
//! Covered surface: `#[derive(Serialize, Deserialize)]` on structs
//! with named fields, tuple structs, and unit-variant enums; the
//! primitive/`String`/`Option`/`Vec`/reference impls those derives
//! need. `#[serde(...)]` attributes are not supported (the workspace
//! uses none).

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-shaped value tree: the stand-in's entire data model.
///
/// Numbers are stored as `f64`; every integer this workspace persists
/// (dimensions, parameter counts) is far below 2⁵³, and `f32` weights
/// widen to `f64` exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object; insertion-ordered, duplicate keys unchecked.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization failure: a human-readable path + reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error describing a type mismatch.
    pub fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Num(_) => "a number",
            Value::Str(_) => "a string",
            Value::Arr(_) => "an array",
            Value::Obj(_) => "an object",
        };
        DeError(format!("expected {what}, found {kind}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves into a [`Value`].
pub trait Serialize {
    /// Produces the value-tree representation of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, reporting structural mismatches as [`DeError`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("a boolean", other)),
        }
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) if n.fract() == 0.0 && *n >= <$t>::MIN as f64 && *n <= <$t>::MAX as f64 => {
                        Ok(*n as $t)
                    }
                    other => Err(DeError::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(DeError::expected("a number", other)),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("a string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("an array", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(usize::from_value(&42usize.to_value()).unwrap(), 42);
        assert_eq!(f32::from_value(&1.25f32.to_value()).unwrap(), 1.25);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Vec::<u8>::from_value(&vec![1u8, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn mismatches_are_reported() {
        assert!(bool::from_value(&Value::Num(1.0)).is_err());
        assert!(usize::from_value(&Value::Num(1.5)).is_err());
        assert!(usize::from_value(&Value::Num(-1.0)).is_err());
        assert!(String::from_value(&Value::Null).is_err());
    }
}
