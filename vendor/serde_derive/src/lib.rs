//! Derive macros for the vendored `serde` stand-in.
//!
//! Parses the item's token stream directly (the registry that would
//! provide `syn`/`quote` is unreachable from this build environment)
//! and emits `impl` blocks as source text. Supported shapes — the ones
//! this workspace derives on — are:
//!
//! * structs with named fields → JSON object keyed by field name;
//! * newtype/tuple structs → the inner value / a JSON array;
//! * enums with unit variants only → the variant name as a string;
//! * lifetime-only generics (`Serialize` only).
//!
//! Anything else (type generics, data-carrying enum variants,
//! `#[serde(...)]` attributes) is rejected with a `compile_error!`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a derive input turned out to be.
enum Item {
    /// Struct with named fields.
    Named {
        name: String,
        generics: String,
        fields: Vec<String>,
    },
    /// Tuple struct with `arity` fields.
    Tuple {
        name: String,
        generics: String,
        arity: usize,
    },
    /// Enum whose variants all carry no data.
    UnitEnum { name: String, variants: Vec<String> },
}

/// Derives `serde::Serialize` for the supported item shapes.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derives `serde::Deserialize` for the supported item shapes.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return error(&msg),
    };
    let code = match (&item, serialize) {
        (
            Item::Named {
                name,
                generics,
                fields,
            },
            true,
        ) => {
            let entries: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl{generics} ::serde::Serialize for {name}{generics} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Obj(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        (
            Item::Named {
                name,
                generics,
                fields,
            },
            false,
        ) => {
            if !generics.is_empty() {
                return error("Deserialize derive does not support generics");
            }
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: match v.get(\"{f}\") {{\n\
                             Some(fv) => ::serde::Deserialize::from_value(fv)\n\
                                 .map_err(|e| ::serde::DeError(format!(\"field `{f}`: {{}}\", e)))?,\n\
                             None => ::serde::Deserialize::from_value(&::serde::Value::Null)\n\
                                 .map_err(|_| ::serde::DeError(\"missing field `{f}`\".to_string()))?,\n\
                         }},"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Obj(_) => Ok({name} {{ {inits} }}),\n\
                             other => Err(::serde::DeError::expected(\"an object\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        (
            Item::Tuple {
                name,
                generics,
                arity,
            },
            true,
        ) => {
            let body = if *arity == 1 {
                // Newtype structs serialize transparently, as upstream
                // serde does.
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let entries: String = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                    .collect();
                format!("::serde::Value::Arr(vec![{entries}])")
            };
            format!(
                "impl{generics} ::serde::Serialize for {name}{generics} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        (
            Item::Tuple {
                name,
                generics,
                arity,
            },
            false,
        ) => {
            if !generics.is_empty() {
                return error("Deserialize derive does not support generics");
            }
            let body = if *arity == 1 {
                format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
            } else {
                let elems: String = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                    .collect();
                format!(
                    "match v {{\n\
                         ::serde::Value::Arr(items) if items.len() == {arity} => \
                             Ok({name}({elems})),\n\
                         other => Err(::serde::DeError::expected(\"an array of {arity}\", other)),\n\
                     }}"
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        (Item::UnitEnum { name, variants }, true) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
        (Item::UnitEnum { name, variants }, false) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => Err(::serde::DeError(format!(\n\
                                     \"unknown {name} variant `{{}}`\", other))),\n\
                             }},\n\
                             other => Err(::serde::DeError::expected(\"a variant string\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("derive emitted invalid Rust")
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!(\"serde stand-in derive: {msg}\");")
        .parse()
        .expect("error emission")
}

// ---------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);
    let keyword = ident_at(&tokens, &mut pos).ok_or("expected `struct` or `enum`")?;
    let name = ident_at(&tokens, &mut pos).ok_or("expected item name")?;
    let generics = parse_generics(&tokens, &mut pos)?;
    match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok(Item::Named {
                    name,
                    generics,
                    fields,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                Ok(Item::Tuple {
                    name,
                    generics,
                    arity,
                })
            }
            _ => Err("unit structs are not supported".into()),
        },
        "enum" => {
            if !generics.is_empty() {
                return Err("generic enums are not supported".into());
            }
            match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let variants = parse_unit_variants(g.stream())?;
                    Ok(Item::UnitEnum { name, variants })
                }
                _ => Err("expected enum body".into()),
            }
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Advances past attributes (`#[...]`) and a visibility qualifier
/// (`pub`, `pub(crate)`, …).
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 2; // `#` plus the bracket group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                *pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *pos += 1; // `(crate)` / `(super)` / …
                    }
                }
            }
            _ => return,
        }
    }
}

fn ident_at(tokens: &[TokenTree], pos: &mut usize) -> Option<String> {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            Some(i.to_string())
        }
        _ => None,
    }
}

/// Captures `<...>` verbatim (lifetime parameters only) so it can be
/// spliced into both the `impl<...>` and `Type<...>` positions.
fn parse_generics(tokens: &[TokenTree], pos: &mut usize) -> Result<String, String> {
    match tokens.get(*pos) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Ok(String::new()),
    }
    let mut depth = 0usize;
    let mut text = String::new();
    // A lifetime parameter reaches the macro as a `'` punct followed by
    // an identifier; a bare identifier would be a type parameter, which
    // the splice-verbatim strategy cannot express in the impl header.
    let mut prev_tick = false;
    while let Some(tok) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                _ => {}
            }
        }
        if matches!(tok, TokenTree::Ident(_)) && !prev_tick {
            return Err("type-generic items are not supported (lifetimes only)".into());
        }
        prev_tick = matches!(tok, TokenTree::Punct(p) if p.as_char() == '\'');
        text.push_str(&tok.to_string());
        *pos += 1;
        if depth == 0 {
            break;
        }
    }
    Ok(text)
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let field = ident_at(&tokens, &mut pos).ok_or("expected field name")?;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            _ => return Err(format!("expected `:` after field `{field}`")),
        }
        fields.push(field);
        skip_type(&tokens, &mut pos);
    }
    Ok(fields)
}

/// Advances past one type, stopping after the comma that ends the
/// field (or at end of input). Commas nested in `<...>` or any
/// delimiter group belong to the type.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle = 0i32;
    while let Some(tok) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    *pos += 1;
                    return;
                }
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut pos = 0;
    let mut arity = 0;
    while pos < tokens.len() {
        arity += 1;
        skip_attrs_and_vis(&tokens, &mut pos);
        skip_type(&tokens, &mut pos);
    }
    arity
}

fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let variant = ident_at(&tokens, &mut pos).ok_or("expected variant name")?;
        match tokens.get(pos) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => pos += 1,
            Some(_) => {
                return Err(format!(
                    "variant `{variant}` carries data; only unit variants are supported"
                ))
            }
        }
        variants.push(variant);
    }
    Ok(variants)
}
