//! Offline stand-in for `serde_json`: renders the vendored
//! [`serde::Value`] model to JSON text and parses it back.
//!
//! Numbers print through Rust's shortest-round-trip `f64` formatting,
//! so every `f32` weight that widened exactly into the value model
//! survives a save/load cycle bit-for-bit.

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// JSON (de)serialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes any [`Serialize`] value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(T::from_value(&value)?)
}

/// Converts any [`Serialize`] type into a [`Value`] tree (support for
/// the [`json!`] macro; upstream has the same function).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Builds a [`Value`] from JSON-looking syntax. Covers the object,
/// array and leaf-expression forms the workspace uses.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Arr(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Obj(vec![
            $( ($key.to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            if !fields.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        if n.fract() == 0.0 && n.abs() < 1e15 {
            // Integral values print without the ".0" suffix `{:?}`
            // would add, matching ordinary JSON emitters.
            out.push_str(&format!("{}", n as i64));
        } else {
            out.push_str(&format!("{n:?}"));
        }
    } else {
        // JSON has no Inf/NaN; upstream serde_json writes null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    if self.peek() != Some(b'"') {
                        return Err(self.err("expected object key"));
                    }
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not reconstructed; the
                            // writer never emits them (it escapes only
                            // control characters).
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Continue a UTF-8 sequence: back up and take the
                    // full char from the source slice.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error(format!("invalid number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let nested = json!({ "ok": true, "missing": json!(null) });
        let v = json!({
            "name": "city",
            "dims": [3, 4, 5],
            "scale": 0.5,
            "nested": nested,
        });
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn floats_roundtrip_exactly() {
        let vals = vec![0.1f32, -1.5e-7, 3.4e38, f32::MIN_POSITIVE, 1.0 / 3.0];
        let text = to_string(&vals).unwrap();
        let back: Vec<f32> = from_str(&text).unwrap();
        assert_eq!(back, vals);
    }

    #[test]
    fn escapes_roundtrip() {
        let s = "line\n\t\"quoted\" \\ slash \u{1} ünïcode".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parse_errors_are_errors() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<u32>("\"x\"").is_err());
    }
}
